"""Static schedule verifier: check any schedule against the paper's invariants.

Pure functions — nothing here mutates calendars, distributions, or
outcomes.  Each ``verify_*`` entry point returns a
:class:`~repro.analysis.violations.VerificationReport` listing every
invariant breach as a typed
:class:`~repro.analysis.violations.Violation`:

* :func:`verify_distribution` — one supporting schedule against its job
  and resource pool (structure, precedence + transfer windows, window
  bounds, release-aware deadline, node double-booking);
* :func:`verify_outcome` — a :class:`~repro.core.critical_works.SchedulingOutcome`,
  adding admissibility-flag consistency, ``CF``/makespan recomputation,
  and a cross-check of its collision records against
  :mod:`repro.core.collisions` ground truth;
* :func:`verify_strategy` — every supporting schedule of a generated
  :class:`~repro.core.strategy.Strategy`;
* :func:`verify_coallocation` — several committed distributions plus
  background calendars sharing one pool (cross-job capacity);
* :func:`verify_trace` — a replayed :class:`~repro.grid.execution.ExecutionTrace`
  against its distribution (actual-time precedence and reservation
  starts).

The structural checks delegate to
:func:`repro.core.schedule.check_distribution` — the core's own
validity oracle — and lift its string-kinded findings into typed
violations, so core and verifier cannot silently drift apart.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..core.calendar import ReservationCalendar
from ..core.collisions import Collision
from ..core.costs import CostModel, distribution_cost
from ..core.critical_works import SchedulingOutcome
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution, Placement, check_distribution
from ..core.strategy import Strategy
from ..core.transfers import NeutralTransferModel, TransferModel, \
    transfer_time_fn
from ..grid.execution import ExecutionTrace
from .violations import VerificationReport, Violation, ViolationKind

__all__ = [
    "verify_distribution",
    "verify_outcome",
    "verify_strategy",
    "verify_coallocation",
    "verify_trace",
]

#: Absolute tolerance for recomputed float quantities (CF values are
#: sums of integers and small rationals; exact to far below this).
_COST_TOLERANCE = 1e-6

#: check_distribution's string kinds lifted into typed violation kinds.
_CORE_KINDS: dict[str, ViolationKind] = {
    "missing": ViolationKind.MISSING_TASK,
    "unknown-task": ViolationKind.UNKNOWN_TASK,
    "unknown-node": ViolationKind.UNKNOWN_NODE,
    "too-short": ViolationKind.RESERVATION_TOO_SHORT,
    "precedence": ViolationKind.PRECEDENCE,
    "deadline": ViolationKind.DEADLINE,
    "overlap": ViolationKind.DOUBLE_BOOKING,
}


def verify_distribution(job: Job, distribution: Distribution,
                        pool: ResourcePool,
                        transfer_model: Optional[TransferModel] = None,
                        level: float = 0.0, release: int = 0,
                        check_deadline: bool = True) -> VerificationReport:
    """Verify one supporting schedule against the paper's invariants.

    Parameters
    ----------
    job:
        The compound job the distribution schedules (the *scheduled*
        job — pass the coarsened variant for S3 strategies).
    distribution:
        The supporting schedule under test.
    pool:
        Processor nodes the placements may use.
    transfer_model:
        Data-policy timing model the schedule was built under
        (default: neutral — free on one node, base time across nodes).
    level:
        Estimation level the reservations must cover (0 = best case).
    release:
        The job's arrival slot; no placement may start earlier, and the
        deadline window is ``[release, release + job.deadline]``.
    check_deadline:
        Disable to verify a schedule already known to be inadmissible
        (its lateness is then the finding, not a defect).
    """
    model = transfer_model or NeutralTransferModel()
    label = distribution.scenario or "distribution"
    report = VerificationReport(
        subject=f"{job.job_id}/{label}")

    for core_violation in check_distribution(
            job, distribution, pool,
            transfer_time=transfer_time_fn(model),
            estimation_level=level):
        kind = _CORE_KINDS.get(core_violation.kind)
        if kind is None:  # pragma: no cover - future core kinds
            kind = ViolationKind.CF_MISMATCH
        if kind is ViolationKind.DEADLINE:
            # Re-derived below with release-awareness.
            continue
        node_id = None
        if kind in (ViolationKind.UNKNOWN_NODE, ViolationKind.DOUBLE_BOOKING,
                    ViolationKind.RESERVATION_TOO_SHORT):
            placed = distribution.placements.get(core_violation.task_id)
            node_id = placed.node_id if placed is not None else None
        report.add(Violation(kind=kind, job_id=job.job_id,
                             task_id=core_violation.task_id,
                             node_id=node_id,
                             detail=core_violation.detail))

    for placement in distribution:
        if placement.start < release:
            report.add(Violation(
                kind=ViolationKind.WINDOW_BOUNDS, job_id=job.job_id,
                task_id=placement.task_id, node_id=placement.node_id,
                detail=(f"starts at {placement.start} before release "
                        f"{release}")))

    if check_deadline and job.deadline:
        limit = release + job.deadline
        if distribution.makespan > limit:
            report.add(Violation(
                kind=ViolationKind.DEADLINE, job_id=job.job_id,
                detail=(f"makespan {distribution.makespan} exceeds "
                        f"deadline window [{release}, {limit}]")))
    return report


def _check_collision_records(job: Job, collisions: Iterable[Collision],
                             pool: ResourcePool,
                             report: VerificationReport) -> None:
    """Cross-check collision records against the pool's ground truth."""
    for collision in collisions:
        if collision.node_id not in pool:
            report.add(Violation(
                kind=ViolationKind.COLLISION_MISMATCH, job_id=job.job_id,
                task_id=collision.task_id, node_id=collision.node_id,
                detail=f"collision on node {collision.node_id} not in pool"))
            continue
        actual_group = pool.node(collision.node_id).group
        if collision.node_group is not actual_group:
            report.add(Violation(
                kind=ViolationKind.COLLISION_MISMATCH, job_id=job.job_id,
                task_id=collision.task_id, node_id=collision.node_id,
                detail=(f"recorded group {collision.node_group} but node "
                        f"{collision.node_id} is {actual_group}")))
        if collision.task_id not in job:
            report.add(Violation(
                kind=ViolationKind.COLLISION_MISMATCH, job_id=job.job_id,
                task_id=collision.task_id, node_id=collision.node_id,
                detail=f"collision names foreign task "
                       f"{collision.task_id!r}"))


def verify_outcome(job: Job, outcome: SchedulingOutcome, pool: ResourcePool,
                   transfer_model: Optional[TransferModel] = None,
                   release: int = 0,
                   accounting_model: Optional[CostModel] = None
                   ) -> VerificationReport:
    """Verify one critical-works outcome (one supporting schedule).

    Beyond :func:`verify_distribution`, this checks that the outcome's
    ``admissible`` flag, reported ``cost`` (``CF``), and ``makespan``
    agree with recomputation from the placements, and that every
    collision record is consistent with the pool.
    """
    report = VerificationReport(
        subject=f"{outcome.job_id}/outcome(level={outcome.level:g})")

    _check_collision_records(job, outcome.collisions, pool, report)

    distribution = outcome.distribution
    if distribution is None:
        if outcome.admissible:
            report.add(Violation(
                kind=ViolationKind.ADMISSIBILITY, job_id=outcome.job_id,
                detail="admissible outcome carries no distribution"))
        return report

    meets = (not job.deadline
             or distribution.makespan <= release + job.deadline)
    if outcome.admissible != meets:
        report.add(Violation(
            kind=ViolationKind.ADMISSIBILITY, job_id=outcome.job_id,
            detail=(f"admissible={outcome.admissible} but makespan "
                    f"{distribution.makespan} vs deadline window "
                    f"[{release}, {release + job.deadline}]")))

    inner = verify_distribution(
        job, distribution, pool, transfer_model=transfer_model,
        level=outcome.level, release=release,
        check_deadline=outcome.admissible)
    report.merge(inner)

    if outcome.makespan is not None and \
            outcome.makespan != distribution.makespan:
        report.add(Violation(
            kind=ViolationKind.CF_MISMATCH, job_id=outcome.job_id,
            detail=(f"reported makespan {outcome.makespan} != recomputed "
                    f"{distribution.makespan}")))
    if outcome.cost is not None:
        recomputed = distribution_cost(distribution, job, pool,
                                       accounting_model)
        if abs(recomputed - outcome.cost) > _COST_TOLERANCE:
            report.add(Violation(
                kind=ViolationKind.CF_MISMATCH, job_id=outcome.job_id,
                detail=(f"reported CF {outcome.cost} != recomputed "
                        f"{recomputed}")))
    return report


def verify_strategy(strategy: Strategy, pool: ResourcePool,
                    transfer_model: Optional[TransferModel] = None,
                    release: int = 0,
                    accounting_model: Optional[CostModel] = None
                    ) -> VerificationReport:
    """Verify every supporting schedule of a generated strategy.

    The scheduled (possibly coarsened) job is the reference structure —
    S3 distributions place aggregated tasks, not the user's originals.
    """
    report = VerificationReport(
        subject=f"{strategy.job.job_id}/strategy({strategy.stype})")
    for supporting in strategy.schedules:
        if abs(supporting.level - supporting.outcome.level) > 1e-9:
            report.add(Violation(
                kind=ViolationKind.ADMISSIBILITY,
                job_id=strategy.job.job_id,
                detail=(f"supporting schedule level {supporting.level:g} "
                        f"!= outcome level {supporting.outcome.level:g}")))
        report.merge(verify_outcome(
            strategy.scheduled_job, supporting.outcome, pool,
            transfer_model=transfer_model, release=release,
            accounting_model=accounting_model))
    return report


def verify_coallocation(distributions: Iterable[Distribution],
                        pool: ResourcePool,
                        calendars: Optional[Mapping[
                            int, ReservationCalendar]] = None
                        ) -> VerificationReport:
    """Verify that several committed schedules share the pool cleanly.

    Two placements of *different* jobs overlapping on one node are a
    capacity overcommit (the job-flow level's collision); overlaps
    within one job are double-booking (the application level's).  When
    background ``calendars`` are given, placements clashing with
    foreign reservations (e.g. the independent-flow load) are also
    capacity overcommits — unless the calendar entry is the placement's
    own booking (matching task tag and interval).
    """
    report = VerificationReport(subject="coallocation")
    by_node: dict[int, list[tuple[str, Placement]]] = {}
    for distribution in distributions:
        for placement in distribution:
            by_node.setdefault(placement.node_id, []).append(
                (distribution.job_id, placement))

    for node_id, entries in sorted(by_node.items()):
        if node_id not in pool:
            for job_id, placement in entries:
                report.add(Violation(
                    kind=ViolationKind.UNKNOWN_NODE, job_id=job_id,
                    task_id=placement.task_id, node_id=node_id,
                    detail=f"node {node_id} not in pool"))
            continue
        entries.sort(key=lambda item: (item[1].start, item[1].end))
        for index, (job_id, placement) in enumerate(entries):
            for other_job, other in entries[index + 1:]:
                if other.start >= placement.end:
                    break
                kind = (ViolationKind.DOUBLE_BOOKING
                        if other_job == job_id
                        else ViolationKind.CAPACITY_OVERCOMMIT)
                report.add(Violation(
                    kind=kind, job_id=job_id, task_id=placement.task_id,
                    node_id=node_id,
                    detail=(f"[{placement.start}, {placement.end}) clashes "
                            f"with {other_job}/{other.task_id} "
                            f"[{other.start}, {other.end})")))
        if calendars is None or node_id not in calendars:
            continue
        for job_id, placement in entries:
            for reservation in calendars[node_id].conflicts(
                    placement.start, placement.end):
                if (reservation.tag == placement.task_id
                        and reservation.start == placement.start
                        and reservation.end == placement.end):
                    continue  # the placement's own booking
                report.add(Violation(
                    kind=ViolationKind.CAPACITY_OVERCOMMIT, job_id=job_id,
                    task_id=placement.task_id, node_id=node_id,
                    detail=(f"[{placement.start}, {placement.end}) overlaps "
                            f"reservation {reservation.tag!r} "
                            f"[{reservation.start}, {reservation.end})")))
    return report


def verify_trace(job: Job, distribution: Distribution,
                 trace: "ExecutionTrace", pool: ResourcePool,
                 transfer_model: Optional[TransferModel] = None
                 ) -> VerificationReport:
    """Verify a replayed execution trace against its distribution.

    A valid replay never starts a task before its reservation or before
    its inputs are available (producer's *actual* end plus the transfer
    lag between the concrete nodes).  Overruns past the reserved end
    are legitimate — they are the QoS-erosion signal the replay exists
    to measure — and are not violations.
    """
    model = transfer_model or NeutralTransferModel()
    report = VerificationReport(subject=f"{job.job_id}/trace")
    for task_id in job.tasks:
        if task_id not in trace.runs:
            report.add(Violation(
                kind=ViolationKind.MISSING_TASK, job_id=job.job_id,
                task_id=task_id, detail="task has no run in the trace"))

    for task_id, run in trace.runs.items():
        if task_id not in distribution:
            report.add(Violation(
                kind=ViolationKind.UNKNOWN_TASK, job_id=job.job_id,
                task_id=task_id,
                detail="trace run for a task the distribution omits"))
            continue
        placement = distribution.placement(task_id)
        if run.actual_start < placement.start:
            report.add(Violation(
                kind=ViolationKind.WINDOW_BOUNDS, job_id=job.job_id,
                task_id=task_id, node_id=placement.node_id,
                detail=(f"actual start {run.actual_start} before reserved "
                        f"start {placement.start}")))
        for pred in job.predecessors(task_id):
            pred_run = trace.runs.get(pred)
            if pred_run is None:
                continue
            transfer = job.transfer_between(pred, task_id)
            if transfer is None or pred_run.node_id not in pool or \
                    placement.node_id not in pool:
                continue
            lag = model.time(transfer, pool.node(pred_run.node_id),
                             pool.node(placement.node_id))
            if run.actual_start < pred_run.actual_end + lag:
                report.add(Violation(
                    kind=ViolationKind.PRECEDENCE, job_id=job.job_id,
                    task_id=task_id, node_id=placement.node_id,
                    detail=(f"actual start {run.actual_start} before "
                            f"{pred} actual end {pred_run.actual_end} "
                            f"+ transfer {lag}")))
    return report
