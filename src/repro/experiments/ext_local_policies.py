"""Section 5 extension: local job-queue policies and reservations.

The conclusions discuss local batch-system behaviour the Section 4
experiments abstracted away (they used plain FCFS):

* "With the use of FCFS strategy waiting time is shorter than with the
  use of LWF."
* "estimation error for starting time forecast is bigger with FCFS
  than with LWF."
* "Backfilling decreases this [queue waiting] time."
* "preliminary reservation nearly always increases queue waiting time."

This experiment drives the local batch simulator over one synthetic
trace per policy and reports mean waits and forecast errors, plus the
reservation impact on the unreserved jobs' waits.
"""

from __future__ import annotations

from typing import Optional

from ..local.batch import LocalBatchSystem
from ..local.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
)
from ..workload.traces import BatchTraceConfig, generate_batch_trace
from .common import ExperimentTable

__all__ = ["run", "reservation_impact"]


def run(n_jobs: int = 400, seed: int = 2009, capacity: int = 8,
        config: Optional[BatchTraceConfig] = None) -> ExperimentTable:
    """Compare queue policies on one trace; then measure reservations."""
    config = config or BatchTraceConfig()
    policies = [FCFSPolicy(), LWFPolicy(), EasyBackfillPolicy(),
                ConservativeBackfillPolicy()]

    table = ExperimentTable(
        experiment_id="ext-local",
        title=(f"Local queue policies ({n_jobs} jobs, "
               f"{capacity}-node cluster)"),
        columns=["policy", "mean wait", "max wait",
                 "mean forecast error", "makespan"],
    )
    for policy in policies:
        trace = list(generate_batch_trace(seed, n_jobs, config))
        system = LocalBatchSystem(capacity, policy)
        system.submit_many(trace)
        records = system.run()
        table.add_row(
            policy=policy.name,
            **{"mean wait": LocalBatchSystem.mean_wait(records),
               "max wait": max(r.wait for r in records),
               "mean forecast error":
                   LocalBatchSystem.mean_forecast_error(records),
               "makespan": max(r.end for r in records)})

    with_res, without_res = reservation_impact(n_jobs, seed, capacity,
                                               config)
    table.notes.append(
        f"advance reservations (20% of jobs): mean unreserved wait "
        f"{with_res:.2f} vs {without_res:.2f} without reservations "
        f"({'increase' if with_res > without_res else 'decrease'})")
    table.notes.append(
        "paper claims: FCFS waits < LWF waits; FCFS forecast error > "
        "LWF; backfilling cuts waits; reservations lengthen waits")
    table.notes.append(
        "LWF trades a lower mean wait for starvation of large jobs — "
        "the FCFS-vs-LWF waiting claim holds for the tail (max wait), "
        "not the mean; see EXPERIMENTS.md")
    return table


def reservation_impact(n_jobs: int = 400, seed: int = 2009,
                       capacity: int = 8,
                       config: Optional[BatchTraceConfig] = None,
                       reserve_fraction: float = 0.2,
                       reserve_delay: int = 10) -> tuple[float, float]:
    """Mean unreserved-job wait with and without advance reservations.

    Every ``1/reserve_fraction``-th job gets a fixed reservation
    ``reserve_delay`` slots after its arrival; the same trace runs
    without reservations for comparison.
    """
    config = config or BatchTraceConfig()
    if not 0 < reserve_fraction < 1:
        raise ValueError(
            f"reserve_fraction must lie in (0, 1), got {reserve_fraction}")
    stride = max(1, round(1 / reserve_fraction))

    trace = list(generate_batch_trace(seed, n_jobs, config))
    reserved_system = LocalBatchSystem(capacity, FCFSPolicy())
    reserved_system.submit_many(trace)
    for index, job in enumerate(trace):
        if index % stride == 0:
            reserved_system.reserve(job, start=job.arrival + reserve_delay)
    with_records = reserved_system.run()

    plain_system = LocalBatchSystem(capacity, FCFSPolicy())
    plain_system.submit_many(trace)
    without_records = plain_system.run()

    return (LocalBatchSystem.mean_wait(with_records),
            LocalBatchSystem.mean_wait(without_records))


if __name__ == "__main__":  # pragma: no cover
    run().show()
