"""Section 5 extension: local job-queue policies and reservations.

The conclusions discuss local batch-system behaviour the Section 4
experiments abstracted away (they used plain FCFS):

* "With the use of FCFS strategy waiting time is shorter than with the
  use of LWF."
* "estimation error for starting time forecast is bigger with FCFS
  than with LWF."
* "Backfilling decreases this [queue waiting] time."
* "preliminary reservation nearly always increases queue waiting time."

The policy sweep is a platform grid: one cell per queue policy (each
cell replays the same deterministic trace through its own simulator),
plus one reserved-FCFS cell for the reservation-impact comparison.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping, Optional

from ..local.batch import LocalBatchSystem
from ..local.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
)
from ..platform import StudyGrid
from ..workload.traces import BatchTraceConfig, generate_batch_trace
from .common import ExperimentTable

__all__ = ["run", "reservation_impact", "grid", "cell"]

#: Queue policies in presentation order, by their display names.
POLICIES = ("FCFS", "LWF", "EASY", "CONS")
#: The extra grid cell: FCFS with periodic advance reservations.
RESERVED = "FCFS+reservations"


def _policy(name: str) -> Any:
    return {
        "FCFS": FCFSPolicy,
        "LWF": LWFPolicy,
        "EASY": EasyBackfillPolicy,
        "CONS": ConservativeBackfillPolicy,
    }[name]()


def _trace_to_config(config: BatchTraceConfig) -> dict[str, Any]:
    payload: dict[str, Any] = {}
    for spec in fields(BatchTraceConfig):
        value = getattr(config, spec.name)
        payload[spec.name] = list(value) if isinstance(value, tuple) else value
    return payload


def _trace_from_config(data: Mapping[str, Any]) -> BatchTraceConfig:
    kwargs = {name: tuple(value) if isinstance(value, (list, tuple)) else value
              for name, value in data.items()}
    return BatchTraceConfig(**kwargs)


def cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: one policy's full run over the shared trace."""
    trace_config = _trace_from_config(config["trace"])
    trace = list(generate_batch_trace(config["seed"], config["n_jobs"],
                                      trace_config))
    name = config["policy"]
    if name == RESERVED:
        system = LocalBatchSystem(config["capacity"], FCFSPolicy())
        system.submit_many(trace)
        stride = config["reserve_stride"]
        delay = config["reserve_delay"]
        for index, job in enumerate(trace):
            if index % stride == 0:
                system.reserve(job, start=job.arrival + delay)
    else:
        system = LocalBatchSystem(config["capacity"], _policy(name))
        system.submit_many(trace)
    records = system.run()
    return {
        "mean_wait": LocalBatchSystem.mean_wait(records),
        "max_wait": max(r.wait for r in records),
        "mean_forecast_error":
            LocalBatchSystem.mean_forecast_error(records),
        "makespan": max(r.end for r in records),
    }


def grid(n_jobs: int = 400, seed: int = 2009, capacity: int = 8,
         config: Optional[BatchTraceConfig] = None,
         reserve_fraction: float = 0.2,
         reserve_delay: int = 10) -> StudyGrid:
    """The policy sweep (plus the reserved-FCFS cell) as a grid."""
    config = config or BatchTraceConfig()
    if not 0 < reserve_fraction < 1:
        raise ValueError(
            f"reserve_fraction must lie in (0, 1), got {reserve_fraction}")
    return StudyGrid(
        study="ext-local",
        runner="repro.experiments.ext_local_policies:cell",
        axes={"policy": list(POLICIES) + [RESERVED]},
        base={
            "seed": seed,
            "n_jobs": n_jobs,
            "capacity": capacity,
            "reserve_stride": max(1, round(1 / reserve_fraction)),
            "reserve_delay": reserve_delay,
            "trace": _trace_to_config(config),
        },
    )


def run(n_jobs: int = 400, seed: int = 2009, capacity: int = 8,
        config: Optional[BatchTraceConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Compare queue policies on one trace; then measure reservations."""
    config = config or BatchTraceConfig()
    results = grid(n_jobs, seed, capacity, config).run(workers=workers)
    by_policy = {row["policy"]: row for row in results}

    table = ExperimentTable(
        experiment_id="ext-local",
        title=(f"Local queue policies ({n_jobs} jobs, "
               f"{capacity}-node cluster)"),
        columns=["policy", "mean wait", "max wait",
                 "mean forecast error", "makespan"],
    )
    for name in POLICIES:
        row = by_policy[name]
        table.add_row(
            policy=name,
            **{"mean wait": row["mean_wait"],
               "max wait": row["max_wait"],
               "mean forecast error": row["mean_forecast_error"],
               "makespan": row["makespan"]})

    with_res = by_policy[RESERVED]["mean_wait"]
    without_res = by_policy["FCFS"]["mean_wait"]
    table.notes.append(
        f"advance reservations (20% of jobs): mean unreserved wait "
        f"{with_res:.2f} vs {without_res:.2f} without reservations "
        f"({'increase' if with_res > without_res else 'decrease'})")
    table.notes.append(
        "paper claims: FCFS waits < LWF waits; FCFS forecast error > "
        "LWF; backfilling cuts waits; reservations lengthen waits")
    table.notes.append(
        "LWF trades a lower mean wait for starvation of large jobs — "
        "the FCFS-vs-LWF waiting claim holds for the tail (max wait), "
        "not the mean; see EXPERIMENTS.md")
    return table


def reservation_impact(n_jobs: int = 400, seed: int = 2009,
                       capacity: int = 8,
                       config: Optional[BatchTraceConfig] = None,
                       reserve_fraction: float = 0.2,
                       reserve_delay: int = 10) -> tuple[float, float]:
    """Mean unreserved-job wait with and without advance reservations.

    Every ``1/reserve_fraction``-th job gets a fixed reservation
    ``reserve_delay`` slots after its arrival; the same trace runs
    without reservations for comparison.  Both runs are grid cells of
    :func:`grid` — cell keys depend on the resolved config, not on
    which axis values a particular grid enumerates, so this two-cell
    subset shares cache entries with the full :func:`run` sweep.
    """
    sweep = grid(n_jobs, seed, capacity, config,
                 reserve_fraction=reserve_fraction,
                 reserve_delay=reserve_delay)
    sweep.axes = {"policy": ["FCFS", RESERVED]}
    results = sweep.run()
    by_policy = {row["policy"]: row for row in results}
    return (by_policy[RESERVED]["mean_wait"],
            by_policy["FCFS"]["mean_wait"])


if __name__ == "__main__":  # pragma: no cover
    run().show()
