"""Fig. 4a reproduction: average node load level per performance group.

Paper: "The strategy S2 performs the best in the term of load balancing
for different groups of processor nodes, while the strategy S1 tries to
occupy 'slow' nodes, and the strategy S3 — the processors with the
highest performance."
"""

from __future__ import annotations

from typing import Optional

from ..core.resources import NodeGroup
from ..core.strategy import StrategyType
from ..platform import StudyGrid
from .common import ExperimentTable
from .study import (
    CoordinatedStudyConfig,
    coordinated_flow_study,
    coordinated_grid,
)

__all__ = ["run", "grid"]

#: Families shown in Fig. 4a.
FIG4A_TYPES = (StrategyType.S1, StrategyType.S2, StrategyType.S3)


def grid(config: Optional[CoordinatedStudyConfig] = None) -> StudyGrid:
    """Fig. 4a's coordinated study grid (S1/S2/S3 families — unlike
    Fig. 4b/4c it shows S1 rather than its truncated MS1 variant)."""
    return coordinated_grid(
        config or CoordinatedStudyConfig(stypes=FIG4A_TYPES))


def run(n_jobs: int = 60, seed: int = 2009,
        config: Optional[CoordinatedStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Regenerate the Fig. 4a load-level bars."""
    config = config or CoordinatedStudyConfig(seed=seed, n_jobs=n_jobs,
                                              stypes=FIG4A_TYPES)
    rows = coordinated_flow_study(config, workers=workers)

    table = ExperimentTable(
        experiment_id="fig4a",
        title=(f"Average node load level per performance group "
               f"({config.n_jobs} jobs per family)"),
        columns=["strategy", "fast %", "medium %", "slow %",
                 "committed", "slow share"],
    )
    for stype in config.stypes:
        row = rows[stype]
        fast = 100 * row.load_by_group.get(NodeGroup.FAST, 0.0)
        medium = 100 * row.load_by_group.get(NodeGroup.MEDIUM, 0.0)
        slow = 100 * row.load_by_group.get(NodeGroup.SLOW, 0.0)
        total = fast + medium + slow
        table.add_row(**{
            "strategy": stype.value,
            "fast %": fast,
            "medium %": medium,
            "slow %": slow,
            "committed": row.committed,
            "slow share": (slow / total if total else 0.0),
        })
    table.notes.append(
        "shape contract: S1 uses the slow group the most, S3 "
        "concentrates on the fast group and barely touches slow nodes")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
