"""Fig. 4c reproduction: strategy time-to-live and start-time deviation.

Paper: "Lowest-cost strategies ... are most persistent in the term of
time-to-live as well.  Withal, less persistent are the 'fastest', most
expensive and most accurate strategies like S2."  The companion bar is
the start-time deviation to job run time ratio, driven by estimation
accuracy (MS1 plans only with best/worst estimates).
"""

from __future__ import annotations

from typing import Optional

from ..metrics.stats import normalize_relative
from ..platform import StudyGrid
from .common import ExperimentTable
from .study import (
    FIG4_TYPES,
    CoordinatedStudyConfig,
    coordinated_flow_study,
    coordinated_grid,
)

__all__ = ["run", "grid"]


def grid(config: Optional[CoordinatedStudyConfig] = None) -> StudyGrid:
    """Fig. 4c rides the shared coordinated study grid (MS1/S2/S3), so
    its cells are cached once for both Fig. 4b and Fig. 4c."""
    return coordinated_grid(config or CoordinatedStudyConfig())


def run(n_jobs: int = 60, seed: int = 2009,
        config: Optional[CoordinatedStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Regenerate the Fig. 4c relative bars."""
    config = config or CoordinatedStudyConfig(seed=seed, n_jobs=n_jobs,
                                              stypes=FIG4_TYPES)
    rows = coordinated_flow_study(config, workers=workers)

    ttls = {stype.value: rows[stype].ttl for stype in config.stypes}
    relative_ttl = normalize_relative(ttls)

    table = ExperimentTable(
        experiment_id="fig4c",
        title=(f"Strategy time-to-live and start deviation "
               f"({config.n_jobs} jobs per family)"),
        columns=["strategy", "relative TTL", "TTL (slots)",
                 "deviation/runtime", "switches"],
    )
    for stype in config.stypes:
        row = rows[stype]
        table.add_row(**{
            "strategy": stype.value,
            "relative TTL": relative_ttl[stype.value],
            "TTL (slots)": row.ttl,
            "deviation/runtime": row.start_deviation_ratio,
            "switches": row.switches,
        })
    table.notes.append(
        "shape contract: S3 the most persistent (highest TTL), S2 the "
        "least persistent of the economic families; MS1's coarse "
        "best/worst estimates cost accuracy")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
