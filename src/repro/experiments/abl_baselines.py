"""Ablation: the critical works method vs standard baselines.

Compares, on identical jobs and background load:

* the critical works method (DP per critical work, CF objective);
* a greedy earliest-finish co-allocator (no cost optimization);
* HEFT list scheduling (makespan objective);
* min-min over the job's tasks treated as independent (precedence
  dropped, as the paper's ref. [13] heuristics assume) — a structure-
  blindness baseline.

The expected pattern: all DAG-aware schedulers find comparable numbers
of admissible schedules; the critical works method pays the least CF;
HEFT/greedy finish earlier; the independent-task mapping breaks
precedence and therefore does not produce valid compound-job schedules
at all (we report its admissibility as the fraction whose mapping
happens to satisfy precedence).

The sweep is a platform grid over (scheduler × job block): schedulers
never commit to the environment, so every cell rebuilds the same
per-job snapshot from pure ``(seed, stream, index)`` forks and cells
are independent — cacheable, resumable, parallel.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..baselines.adapters import (
    GreedyScheduler,
    HeftScheduler,
    IndependentTasksScheduler,
)
from ..baselines.heuristics import Heuristic
from ..core.critical_works import CriticalWorksScheduler
from ..core.strategy import DataPolicyKind
from ..grid.data import default_policy_models
from ..grid.environment import GridEnvironment
from ..metrics.stats import mean
from ..platform import Results, StudyGrid
from ..sim.rng import RandomStreams
from ..workload.generator import generate_job, generate_pool
from .common import ExperimentTable, select_nodes_for_job
from .study import (
    BLOCK_SIZE,
    ApplicationStudyConfig,
    _workload_from_config,
    _workload_to_config,
)

__all__ = ["run", "grid", "cell"]

#: Scheduler ids, in the table's presentation order.
SCHEDULERS = ("critical-works", "greedy", "heft", "min-min")


def _scheduler(name: str, subset: Any, transfer_model: Any) -> Any:
    if name == "critical-works":
        return CriticalWorksScheduler(subset, transfer_model)
    if name == "greedy":
        return GreedyScheduler(transfer_model)
    if name == "heft":
        return HeftScheduler(transfer_model)
    if name == "min-min":
        return IndependentTasksScheduler(Heuristic.MIN_MIN)
    raise ValueError(f"unknown scheduler {name!r}")


def cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: one scheduler over one block of jobs."""
    study = ApplicationStudyConfig(
        seed=config["seed"],
        n_jobs=0,
        busy_fraction=config["busy_fraction"],
        nodes_per_job=config["nodes_per_job"],
        horizon_factor=config["horizon_factor"],
        background_burst=config["background_burst"],
        workload=_workload_from_config(config["workload"]),
    )
    streams = RandomStreams(study.seed)
    pool = generate_pool(streams.stream("pool"), study.workload)
    transfer_model = default_policy_models()[DataPolicyKind.REPLICATION]
    name = config["scheduler"]

    admissible = 0
    costs: list[float] = []
    makespans: list[int] = []
    lo, hi = config["block"]
    for index in range(lo, hi):
        job = generate_job(streams.fork("jobs", index), index,
                           study.workload)
        subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                      study.nodes_per_job)
        environment = GridEnvironment(subset)
        horizon = max(1, int(job.deadline * study.horizon_factor))
        environment.apply_background_load(
            streams.fork("background", index), study.busy_fraction,
            horizon, max_burst=study.background_burst)
        calendars = environment.snapshot()

        outcome = _scheduler(name, subset, transfer_model).schedule(
            job, subset, calendars)
        if outcome.admissible:
            admissible += 1
            costs.append(outcome.cost)
            makespans.append(outcome.makespan)
    return {"admissible": admissible, "costs": costs,
            "makespans": makespans}


def grid(config: Optional[ApplicationStudyConfig] = None,
         block_size: int = BLOCK_SIZE) -> StudyGrid:
    """The ablation as a grid: scheduler × job block."""
    config = config or ApplicationStudyConfig(n_jobs=150)
    blocks = [(lo, min(lo + block_size, config.n_jobs))
              for lo in range(0, config.n_jobs, block_size)]
    return StudyGrid(
        study="abl-dp",
        runner="repro.experiments.abl_baselines:cell",
        axes={"scheduler": list(SCHEDULERS), "block": blocks},
        base={
            "seed": config.seed,
            "busy_fraction": config.busy_fraction,
            "nodes_per_job": config.nodes_per_job,
            "horizon_factor": config.horizon_factor,
            "background_burst": config.background_burst,
            "workload": _workload_to_config(config.workload),
        },
    )


def _table_from_results(results: Results, n_jobs: int,
                        busy_fraction: float) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="abl-dp",
        title=(f"Critical works vs baselines "
               f"({n_jobs} jobs, background "
               f"{busy_fraction:.0%})"),
        columns=["scheduler", "admissible %", "mean CF", "mean makespan"],
    )
    for (name,), bucket in results.group_by("scheduler").items():
        # Blocks merge in cell order, reproducing the single-pass fold.
        costs = [cost for row in bucket for cost in row["costs"]]
        makespans = [m for row in bucket for m in row["makespans"]]
        table.add_row(**{
            "scheduler": name,
            "admissible %": (100.0 * sum(row["admissible"]
                                         for row in bucket) / n_jobs),
            "mean CF": mean(costs),
            "mean makespan": mean(makespans),
        })
    table.notes.append(
        "critical works should pay the least CF among DAG-aware "
        "schedulers; min-min ignores precedence and transfer lags, so "
        "its mappings are rarely valid compound-job schedules")
    return table


def run(n_jobs: int = 150, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Compare application-level schedulers under background load."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    results = grid(config).run(workers=workers)
    return _table_from_results(results, config.n_jobs,
                               config.busy_fraction)


if __name__ == "__main__":  # pragma: no cover
    run().show()
