"""Ablation: the critical works method vs standard baselines.

Compares, on identical jobs and background load:

* the critical works method (DP per critical work, CF objective);
* a greedy earliest-finish co-allocator (no cost optimization);
* HEFT list scheduling (makespan objective);
* min-min over the job's tasks treated as independent (precedence
  dropped, as the paper's ref. [13] heuristics assume) — a structure-
  blindness baseline.

The expected pattern: all DAG-aware schedulers find comparable numbers
of admissible schedules; the critical works method pays the least CF;
HEFT/greedy finish earlier; the independent-task mapping breaks
precedence and therefore does not produce valid compound-job schedules
at all (we report its admissibility as the fraction whose mapping
happens to satisfy precedence).
"""

from __future__ import annotations

from typing import Optional

from ..baselines.adapters import (
    GreedyScheduler,
    HeftScheduler,
    IndependentTasksScheduler,
)
from ..baselines.heuristics import Heuristic
from ..core.critical_works import CriticalWorksScheduler
from ..core.strategy import DataPolicyKind
from ..grid.data import default_policy_models
from ..grid.environment import GridEnvironment
from ..metrics.stats import mean
from ..sim.rng import RandomStreams
from ..workload.generator import generate_job, generate_pool
from .common import ExperimentTable, select_nodes_for_job
from .study import ApplicationStudyConfig

__all__ = ["run"]


def run(n_jobs: int = 150, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None) -> ExperimentTable:
    """Compare application-level schedulers under background load."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    streams = RandomStreams(config.seed)
    pool = generate_pool(streams.stream("pool"), config.workload)
    transfer_model = default_policy_models()[DataPolicyKind.REPLICATION]

    stats = {name: {"admissible": 0, "costs": [], "makespans": []}
             for name in ("critical-works", "greedy", "heft", "min-min")}

    for index in range(config.n_jobs):
        job = generate_job(streams.fork("jobs", index), index,
                           config.workload)
        subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                      config.nodes_per_job)
        environment = GridEnvironment(subset)
        horizon = max(1, int(job.deadline * config.horizon_factor))
        environment.apply_background_load(
            streams.fork("background", index), config.busy_fraction,
            horizon, max_burst=config.background_burst)
        calendars = environment.snapshot()

        # One protocol, four schedulers: everything below dispatches
        # through Scheduler.schedule and scores the outcome uniformly.
        schedulers = [
            ("critical-works", CriticalWorksScheduler(subset,
                                                      transfer_model)),
            ("greedy", GreedyScheduler(transfer_model)),
            ("heft", HeftScheduler(transfer_model)),
            ("min-min", IndependentTasksScheduler(Heuristic.MIN_MIN)),
        ]
        for name, scheduler in schedulers:
            outcome = scheduler.schedule(job, subset, calendars)
            if outcome.admissible:
                stats[name]["admissible"] += 1
                stats[name]["costs"].append(outcome.cost)
                stats[name]["makespans"].append(outcome.makespan)

    table = ExperimentTable(
        experiment_id="abl-dp",
        title=(f"Critical works vs baselines "
               f"({config.n_jobs} jobs, background "
               f"{config.busy_fraction:.0%})"),
        columns=["scheduler", "admissible %", "mean CF", "mean makespan"],
    )
    for name, bucket in stats.items():
        table.add_row(**{
            "scheduler": name,
            "admissible %": 100.0 * bucket["admissible"] / config.n_jobs,
            "mean CF": mean(bucket["costs"]),
            "mean makespan": mean(bucket["makespans"]),
        })
    table.notes.append(
        "critical works should pay the least CF among DAG-aware "
        "schedulers; min-min ignores precedence and transfer lags, so "
        "its mappings are rarely valid compound-job schedules")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
