"""Shared infrastructure for the experiment harness.

Every experiment produces an :class:`ExperimentTable` — the rows the
paper's corresponding table or figure reports — and can render itself
as plain text.  The helpers here also cover per-job environment setup
(node subsets "conformed to a job structure", background load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.resources import NodeGroup, ProcessorNode, ResourcePool
from ..sim.rng import RandomStreams

__all__ = ["ExperimentTable", "select_nodes_for_job"]


@dataclass
class ExperimentTable:
    """One reproduced table/figure: titled rows plus free-form notes."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; keys must match the declared columns."""
        missing = [c for c in self.columns if c not in values]
        extra = [k for k in values if k not in self.columns]
        if missing or extra:
            raise ValueError(
                f"row mismatch: missing {missing}, unexpected {extra}")
        self.rows.append(dict(values))

    def formatted(self) -> str:
        """Plain-text rendering (fixed-width columns)."""
        def text(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        widths = {
            column: max([len(column)]
                        + [len(text(row[column])) for row in self.rows])
            for column in self.columns
        }
        header = "  ".join(column.ljust(widths[column])
                           for column in self.columns)
        rule = "-" * len(header)
        lines = [f"[{self.experiment_id}] {self.title}", rule, header, rule]
        for row in self.rows:
            lines.append("  ".join(
                text(row[column]).ljust(widths[column])
                for column in self.columns))
        lines.append(rule)
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table."""
        print(self.formatted())

    def row_map(self, key_column: str) -> dict[Any, dict[str, Any]]:
        """Rows indexed by one column (for tests and comparisons)."""
        return {row[key_column]: row for row in self.rows}


def select_nodes_for_job(pool: ResourcePool,
                         rng: "np.random.Generator | int",
                         count: int) -> ResourcePool:
    """Pick a job's candidate nodes, stratified over performance groups.

    Section 4: "A number of nodes was conformed to a job structure,
    i.e. a task parallelism degree".  The subset keeps the VO's group
    proportions so every strategy still faces the fast/medium/slow
    trade-off.

    The "fill proportionally at random" tail draws from ``rng``: either
    a ready ``numpy.random.Generator`` (callers fork one per job from
    their experiment streams) or a bare integer seed, which is routed
    through :class:`repro.sim.rng.RandomStreams` (stream
    ``"node-selection"``).  The unseeded global ``numpy.random`` state
    is never consulted, so node subsets are reproducible from the
    experiment seed alone (the simulator lint's REP001 rule enforces
    this repository-wide).
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    if isinstance(rng, (int, np.integer)):
        rng = RandomStreams(int(rng)).stream("node-selection")
    count = min(count, len(pool))
    chosen: list[ProcessorNode] = []
    remaining = count
    groups = [pool.by_group(group) for group in NodeGroup]
    present = [nodes for nodes in groups if nodes]
    # One representative per present group first (keeps heterogeneity),
    # then fill proportionally at random.
    for nodes in present:
        if remaining == 0:
            break
        pick = nodes[int(rng.integers(0, len(nodes)))]
        if pick not in chosen:
            chosen.append(pick)
            remaining -= 1
    leftovers = [node for node in pool if node not in chosen]
    if remaining > 0 and leftovers:
        indices = rng.choice(len(leftovers),
                             size=min(remaining, len(leftovers)),
                             replace=False)
        chosen.extend(leftovers[int(i)] for i in np.atleast_1d(indices))
    return ResourcePool(sorted(chosen, key=lambda n: n.node_id))
