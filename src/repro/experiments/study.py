"""The two underlying simulation studies behind Figs. 3 and 4.

* :func:`application_level_study` — per-job isolated environments, the
  Section 4 statistical study of the critical works method ("the main
  goal ... to estimate a forecast possibility for making application-
  level schedules without taking into account independent job flows").
  Feeds Fig. 3a (admissible %), Fig. 3b (collision split), and the
  strategy-expense ablation.
* :func:`coordinated_flow_study` — a shared environment per strategy
  family with job flows committed through the metascheduler.  Feeds
  Fig. 4a (load levels), Fig. 4b (cost / execution time), and Fig. 4c
  (time-to-live / start deviation).

Both studies are grid-shaped (:mod:`repro.platform`): the application
study's cells are (strategy family × job block) — a block is a
contiguous index range, so growing ``n_jobs`` only *adds* cells and
every previously cached block stays valid — and the coordinated study's
cells are whole per-family runs.  Cell runners are pure functions of
their config: all randomness forks from ``(seed, stream name, index)``,
which is what makes any worker count, and any cached/computed split,
bit-identical to the sequential path.

:func:`application_grid` / :func:`coordinated_grid` expose the specs
for the ``repro study`` CLI; the two study functions keep their
original dict-of-aggregates signatures by folding grid rows back
through ``from_row`` in cell order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Mapping, Optional

from ..core.resources import NodeGroup
from ..core.strategy import StrategyGenerator, StrategyType
from ..flow.reallocation import strategy_time_to_live
from ..grid.data import default_policy_models
from ..grid.environment import GridEnvironment
from ..grid.execution import simulate_execution
from ..metrics.indices import ROW_SCHEMA_VERSION, StrategyAggregate
from ..metrics.stats import mean
from ..platform import (ProgressEvent, Results, ResultStore, StudyGrid,
                        effective_workers)
from ..sim.rng import RandomStreams
from ..workload.generator import WorkloadConfig, generate_job, generate_pool
from .common import select_nodes_for_job

__all__ = [
    "ApplicationStudyConfig",
    "application_cell",
    "application_grid",
    "application_level_study",
    "CoordinatedStudyConfig",
    "CoordinatedRow",
    "coordinated_cell",
    "coordinated_grid",
    "coordinated_flow_study",
]

#: The families evaluated in the Fig. 3 study.
FIG3_TYPES: tuple[StrategyType, ...] = (
    StrategyType.S1, StrategyType.S2, StrategyType.S3)
#: The families shown in Fig. 4b/4c.
FIG4_TYPES: tuple[StrategyType, ...] = (
    StrategyType.MS1, StrategyType.S2, StrategyType.S3)

#: Jobs per application-study grid cell.  Coarse enough that the
#: per-cell pool rebuild is noise, fine enough that a grid run streams
#: progress and a resumed run salvages most of an interrupted study.
BLOCK_SIZE = 25


@dataclass(frozen=True)
class ApplicationStudyConfig:
    """Parameters of the Fig. 3 study (defaults are laptop-scale; the
    paper's 12 000 jobs are reachable with ``n_jobs=12000``)."""

    seed: int = 2009
    n_jobs: int = 200
    #: Background (independent-flow) utilization of every node,
    #: calibrated so roughly a third of jobs find admissible schedules
    #: (the paper's 38 / 37 / 33 % regime).
    busy_fraction: float = 0.8
    #: Candidate nodes offered per job (≈ 2× the parallelism degree).
    nodes_per_job: int = 8
    #: Horizon for background load as a multiple of the job deadline.
    horizon_factor: float = 3.0
    #: Largest contiguous background reservation (and thus the typical
    #: free-window granularity independent flows leave behind).
    background_burst: int = 30
    stypes: tuple[StrategyType, ...] = FIG3_TYPES
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)


def _effective_workers(workers: Optional[int], task_count: int) -> int:
    """Back-compat alias of :func:`repro.platform.effective_workers`."""
    return effective_workers(workers, task_count)


# ----------------------------------------------------------------------
# Config (de)serialization — grid cells carry primitives only
# ----------------------------------------------------------------------

def _workload_to_config(workload: WorkloadConfig) -> dict[str, Any]:
    """A JSON-ready (and hashable-by-content) workload description."""
    payload: dict[str, Any] = {}
    for spec in fields(WorkloadConfig):
        value = getattr(workload, spec.name)
        payload[spec.name] = list(value) if isinstance(value, tuple) else value
    return payload


def _workload_from_config(data: Mapping[str, Any]) -> WorkloadConfig:
    kwargs = {name: tuple(value) if isinstance(value, (list, tuple)) else value
              for name, value in data.items()}
    return WorkloadConfig(**kwargs)


# ----------------------------------------------------------------------
# Application-level study (Fig. 3)
# ----------------------------------------------------------------------

def _study_job_strategies(pool: Any, policy_models: Any,
                          config: ApplicationStudyConfig, index: int) -> list:
    """Generate the strategies of one study job.

    Pure function of ``(config, index)`` given the shared pool: all
    randomness flows through ``streams.fork(name, index)``, which seeds
    from ``(seed, name, index)`` only — independent of generation order,
    which is what makes the grid fan-out bit-identical.
    """
    streams = RandomStreams(config.seed)
    job = generate_job(streams.fork("jobs", index), index, config.workload)
    subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                  config.nodes_per_job)
    environment = GridEnvironment(subset)
    horizon = max(1, int(job.deadline * config.horizon_factor))
    if config.busy_fraction > 0:
        environment.apply_background_load(
            streams.fork("background", index), config.busy_fraction,
            horizon, max_burst=config.background_burst)
    generator = StrategyGenerator(subset, policy_models)
    calendars = environment.snapshot()
    return [generator.generate(job, calendars, stype)
            for stype in config.stypes]


def application_cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: a block of jobs under one strategy family.

    ``config`` is the cell's resolved primitives — study scalars, the
    workload dict, ``stype`` (family name), and ``block`` as a
    ``[lo, hi)`` index range.  Returns the block's
    :meth:`~repro.metrics.indices.StrategyAggregate.to_row` payload;
    merging block rows in cell order reproduces the single-pass fold.
    """
    stype = StrategyType[config["stype"]]
    study = ApplicationStudyConfig(
        seed=config["seed"],
        n_jobs=0,
        busy_fraction=config["busy_fraction"],
        nodes_per_job=config["nodes_per_job"],
        horizon_factor=config["horizon_factor"],
        background_burst=config["background_burst"],
        stypes=(stype,),
        workload=_workload_from_config(config["workload"]),
    )
    streams = RandomStreams(study.seed)
    pool = generate_pool(streams.stream("pool"), study.workload)
    policy_models = default_policy_models()
    aggregate = StrategyAggregate(stype=stype)
    lo, hi = config["block"]
    for index in range(lo, hi):
        for strategy in _study_job_strategies(pool, policy_models,
                                              study, index):
            aggregate.add(strategy)
    return aggregate.to_row()


def application_grid(config: Optional[ApplicationStudyConfig] = None,
                     block_size: int = BLOCK_SIZE) -> StudyGrid:
    """The Fig. 3 study as a declarative grid: family × job block.

    ``n_jobs`` is deliberately *not* part of the cell config — it only
    determines how many blocks exist, so raising it appends cells and
    every cached block from the smaller study is reused as-is.
    """
    config = config or ApplicationStudyConfig()
    blocks = [(lo, min(lo + block_size, config.n_jobs))
              for lo in range(0, config.n_jobs, block_size)]
    return StudyGrid(
        study="application",
        runner="repro.experiments.study:application_cell",
        axes={
            "stype": [stype.name for stype in config.stypes],
            "block": blocks,
        },
        base={
            "seed": config.seed,
            "busy_fraction": config.busy_fraction,
            "nodes_per_job": config.nodes_per_job,
            "horizon_factor": config.horizon_factor,
            "background_burst": config.background_burst,
            "workload": _workload_to_config(config.workload),
        },
        schema_version=ROW_SCHEMA_VERSION,
    )


def _fold_application_rows(results: Results
                           ) -> dict[StrategyType, StrategyAggregate]:
    merged: dict[StrategyType, StrategyAggregate] = {}
    for row in results:
        aggregate = StrategyAggregate.from_row(row)
        bucket = merged.get(aggregate.stype)
        if bucket is None:
            merged[aggregate.stype] = aggregate
        else:
            bucket.merge(aggregate)
    return merged


def application_level_study(config: Optional[ApplicationStudyConfig] = None,
                            workers: Optional[int] = 1,
                            store: Optional[ResultStore] = None,
                            resume: bool = True,
                            progress: Optional[
                                Callable[[ProgressEvent], None]] = None,
                            ) -> dict[StrategyType, StrategyAggregate]:
    """Generate strategies for isolated random jobs and aggregate.

    Runs the :func:`application_grid` pipeline and folds block rows in
    cell order, so the aggregates are bit-identical for any worker
    count (``None``: one per CPU) and for any cached/computed split
    when a ``store`` is supplied.
    """
    config = config or ApplicationStudyConfig()
    results = application_grid(config).run(
        workers=workers, store=store, resume=resume, progress=progress)
    return _fold_application_rows(results)


# ----------------------------------------------------------------------
# Coordinated job-flow study (Fig. 4)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CoordinatedStudyConfig:
    """Parameters of the Fig. 4 coordinated job-flow study."""

    seed: int = 2009
    n_jobs: int = 60
    #: Shared-environment background utilization (high enough that the
    #: family objectives bind; see EXPERIMENTS.md calibration notes).
    busy_fraction: float = 0.45
    #: Simulation horizon (slots); releases spread over its first 60%.
    horizon: int = 240
    #: Drift: expected background events per slot (drives TTL).
    drift_rate: float = 0.4
    #: Noise on the forecast estimation level (uniform half-width).
    forecast_noise: float = 0.25
    stypes: tuple[StrategyType, ...] = FIG4_TYPES
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)


@dataclass
class CoordinatedRow:
    """Per-family outcome of the coordinated study."""

    #: Explicit serialization order (see :meth:`to_row`).
    ROW_FIELDS = ("stype", "committed", "rejected", "load_by_group",
                  "cost_per_volume", "execution_stretch",
                  "completion_stretch", "ttl", "start_deviation_ratio",
                  "switches")

    stype: StrategyType
    committed: int = 0
    rejected: int = 0
    load_by_group: dict[NodeGroup, float] = field(default_factory=dict)
    #: CF of the activated schedule per unit of job volume.
    cost_per_volume: float = 0.0
    #: Actual total task execution (reserved occupancy) over best-case work.
    execution_stretch: float = 0.0
    #: Job completion time over the best-case critical path ("slowness").
    completion_stretch: float = 0.0
    #: Mean strategy time-to-live in slots (capped at the horizon).
    ttl: float = 0.0
    #: Mean start-deviation / run-time ratio of executed jobs.
    start_deviation_ratio: float = 0.0
    #: Mean supporting-schedule switches during the TTL replay.
    switches: float = 0.0

    def to_row(self) -> dict[str, Any]:
        """A flat, JSON-ready row in :data:`ROW_FIELDS` order; the
        load mapping flattens to group names in :class:`NodeGroup`
        declaration order so equal rows serialize to equal bytes."""
        values: dict[str, Any] = {
            "stype": self.stype.name,
            "committed": self.committed,
            "rejected": self.rejected,
            "load_by_group": {
                group.name: self.load_by_group[group]
                for group in NodeGroup if group in self.load_by_group},
            "cost_per_volume": self.cost_per_volume,
            "execution_stretch": self.execution_stretch,
            "completion_stretch": self.completion_stretch,
            "ttl": self.ttl,
            "start_deviation_ratio": self.start_deviation_ratio,
            "switches": self.switches,
        }
        row = {"row_schema": ROW_SCHEMA_VERSION}
        row.update((name, values[name]) for name in self.ROW_FIELDS)
        return row

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "CoordinatedRow":
        """Rebuild from :meth:`to_row` output (extra keys ignored)."""
        schema = row.get("row_schema")
        if schema != ROW_SCHEMA_VERSION:
            raise ValueError(
                f"coordinated row schema {schema!r} != {ROW_SCHEMA_VERSION}")
        return cls(
            stype=StrategyType[row["stype"]],
            committed=int(row["committed"]),
            rejected=int(row["rejected"]),
            load_by_group={NodeGroup[name]: float(value)
                           for name, value in row["load_by_group"].items()},
            cost_per_volume=float(row["cost_per_volume"]),
            execution_stretch=float(row["execution_stretch"]),
            completion_stretch=float(row["completion_stretch"]),
            ttl=float(row["ttl"]),
            start_deviation_ratio=float(row["start_deviation_ratio"]),
            switches=float(row["switches"]),
        )


def _coordinated_family(config: CoordinatedStudyConfig,
                        stype: StrategyType) -> CoordinatedRow:
    """One family's full shared-environment run (independent seeds)."""
    policy_models = default_policy_models()
    streams = RandomStreams(config.seed)
    pool = generate_pool(streams.stream("pool"), config.workload)
    environment = GridEnvironment(pool)
    if config.busy_fraction > 0:
        environment.apply_background_load(
            streams.stream("background"), config.busy_fraction,
            config.horizon)
    generator = StrategyGenerator(pool, policy_models)
    row = CoordinatedRow(stype=stype)
    costs, stretches, ttls, deviations, switches = [], [], [], [], []
    completions = []

    for index in range(config.n_jobs):
        job_rng = streams.fork("jobs", index)
        job = generate_job(job_rng, index, config.workload)
        release = int(streams.fork("release", index).integers(
            0, max(1, int(config.horizon * 0.6))))
        actual_rng = streams.fork("actual", index)
        actual_level = float(actual_rng.uniform(0.0, 1.0))
        noise = float(actual_rng.uniform(-config.forecast_noise,
                                         config.forecast_noise))
        forecast_level = min(1.0, max(0.0, actual_level + noise))

        calendars = environment.snapshot()
        strategy = generator.generate(job, calendars, stype,
                                      release=release)
        chosen = (strategy.cheapest_covering(forecast_level)
                  or strategy.best_schedule())
        if chosen is None or not environment.can_commit(
                chosen.distribution):
            row.rejected += 1
            continue
        environment.commit_distribution(chosen.distribution)
        row.committed += 1

        scheduled = strategy.scheduled_job
        costs.append(chosen.outcome.cost / scheduled.total_volume())

        # Replay with the *actual* level: when the activated variant
        # planned below it (forecast undershoot), producers run past
        # their reservations and successors start late — the start-
        # deviation source of Fig. 4c.
        trace = simulate_execution(
            scheduled, chosen.distribution, pool,
            actual_level=actual_level,
            transfer_model=policy_models[strategy.spec.policy])
        best_work = sum(task.best_time
                        for task in scheduled.tasks.values())
        reserved = sum(p.duration for p in chosen.distribution)
        stretches.append(reserved / best_work if best_work else 0.0)
        critical_path = max(1, job.minimal_makespan(1.0))
        completions.append(
            (chosen.distribution.makespan - release) / critical_path)
        deviations.append(trace.deviation_to_runtime_ratio())

        drift = environment.sample_background_events(
            streams.fork("drift", index), config.drift_rate,
            config.horizon)
        ttl_result = strategy_time_to_live(
            strategy, drift, horizon=config.horizon,
            min_level=forecast_level)
        ttls.append(ttl_result.ttl)
        switches.append(ttl_result.switches)

    row.load_by_group = environment.utilization_by_group_tagged(
        0, config.horizon)
    row.cost_per_volume = mean(costs)
    row.execution_stretch = mean(stretches)
    row.completion_stretch = mean(completions)
    row.ttl = mean(ttls)
    row.start_deviation_ratio = mean(deviations)
    row.switches = mean(switches)
    return row


def coordinated_cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: a whole shared-environment run for one family.

    Families can't be split into job blocks — each job's commit changes
    the environment every later job sees — so the family *is* the cell.
    """
    stype = StrategyType[config["stype"]]
    study = CoordinatedStudyConfig(
        seed=config["seed"],
        n_jobs=config["n_jobs"],
        busy_fraction=config["busy_fraction"],
        horizon=config["horizon"],
        drift_rate=config["drift_rate"],
        forecast_noise=config["forecast_noise"],
        stypes=(stype,),
        workload=_workload_from_config(config["workload"]),
    )
    return _coordinated_family(study, stype).to_row()


def coordinated_grid(config: Optional[CoordinatedStudyConfig] = None
                     ) -> StudyGrid:
    """The Fig. 4 study as a declarative grid: one cell per family."""
    config = config or CoordinatedStudyConfig()
    return StudyGrid(
        study="coordinated",
        runner="repro.experiments.study:coordinated_cell",
        axes={"stype": [stype.name for stype in config.stypes]},
        base={
            "seed": config.seed,
            "n_jobs": config.n_jobs,
            "busy_fraction": config.busy_fraction,
            "horizon": config.horizon,
            "drift_rate": config.drift_rate,
            "forecast_noise": config.forecast_noise,
            "workload": _workload_to_config(config.workload),
        },
        schema_version=ROW_SCHEMA_VERSION,
    )


def _fold_coordinated_rows(results: Results
                           ) -> dict[StrategyType, CoordinatedRow]:
    rows = {}
    for row in results:
        rebuilt = CoordinatedRow.from_row(row)
        rows[rebuilt.stype] = rebuilt
    return rows


def coordinated_flow_study(config: Optional[CoordinatedStudyConfig] = None,
                           workers: Optional[int] = 1,
                           store: Optional[ResultStore] = None,
                           resume: bool = True,
                           progress: Optional[
                               Callable[[ProgressEvent], None]] = None,
                           ) -> dict[StrategyType, CoordinatedRow]:
    """Run the shared-environment study once per strategy family.

    Every family sees the *same* jobs, node pool, background load, and
    drift events (identical seeds), so differences between rows are the
    strategies' doing.  Families are mutually independent (each owns a
    fresh environment), so the grid fans them out over processes; rows
    merge in family order and match the sequential results exactly.
    """
    config = config or CoordinatedStudyConfig()
    results = coordinated_grid(config).run(
        workers=workers, store=store, resume=resume, progress=progress)
    return _fold_coordinated_rows(results)
