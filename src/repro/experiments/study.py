"""The two underlying simulation studies behind Figs. 3 and 4.

* :func:`application_level_study` — per-job isolated environments, the
  Section 4 statistical study of the critical works method ("the main
  goal ... to estimate a forecast possibility for making application-
  level schedules without taking into account independent job flows").
  Feeds Fig. 3a (admissible %), Fig. 3b (collision split), and the
  strategy-expense ablation.
* :func:`coordinated_flow_study` — a shared environment per strategy
  family with job flows committed through the metascheduler.  Feeds
  Fig. 4a (load levels), Fig. 4b (cost / execution time), and Fig. 4c
  (time-to-live / start deviation).

Both studies accept a ``workers`` argument: per-job ``streams.fork``
seeding makes every study job independent and order-insensitive, so the
fan-out (``concurrent.futures.ProcessPoolExecutor``) merges results in
job order and is bit-identical to the sequential path for any worker
count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import repeat
from typing import Any, Optional

from ..core.resources import NodeGroup
from ..core.strategy import StrategyGenerator, StrategyType
from ..flow.reallocation import strategy_time_to_live
from ..grid.data import default_policy_models
from ..grid.environment import GridEnvironment
from ..grid.execution import simulate_execution
from ..metrics.indices import StrategyAggregate, aggregate_strategies
from ..metrics.stats import mean
from ..sim.rng import RandomStreams
from ..workload.generator import WorkloadConfig, generate_job, generate_pool
from .common import select_nodes_for_job

__all__ = [
    "ApplicationStudyConfig",
    "application_level_study",
    "CoordinatedStudyConfig",
    "CoordinatedRow",
    "coordinated_flow_study",
]

#: The families evaluated in the Fig. 3 study.
FIG3_TYPES: tuple[StrategyType, ...] = (
    StrategyType.S1, StrategyType.S2, StrategyType.S3)
#: The families shown in Fig. 4b/4c.
FIG4_TYPES: tuple[StrategyType, ...] = (
    StrategyType.MS1, StrategyType.S2, StrategyType.S3)


@dataclass(frozen=True)
class ApplicationStudyConfig:
    """Parameters of the Fig. 3 study (defaults are laptop-scale; the
    paper's 12 000 jobs are reachable with ``n_jobs=12000``)."""

    seed: int = 2009
    n_jobs: int = 200
    #: Background (independent-flow) utilization of every node,
    #: calibrated so roughly a third of jobs find admissible schedules
    #: (the paper's 38 / 37 / 33 % regime).
    busy_fraction: float = 0.8
    #: Candidate nodes offered per job (≈ 2× the parallelism degree).
    nodes_per_job: int = 8
    #: Horizon for background load as a multiple of the job deadline.
    horizon_factor: float = 3.0
    #: Largest contiguous background reservation (and thus the typical
    #: free-window granularity independent flows leave behind).
    background_burst: int = 30
    stypes: tuple[StrategyType, ...] = FIG3_TYPES
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)


def _effective_workers(workers: Optional[int], task_count: int) -> int:
    """Clamp a worker request to something sensible for ``task_count``."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return min(workers, max(1, task_count))


def _study_job_strategies(pool: Any, policy_models: Any,
                          config: ApplicationStudyConfig, index: int) -> list:
    """Generate the strategies of one study job.

    Pure function of ``(config, index)`` given the shared pool: all
    randomness flows through ``streams.fork(name, index)``, which seeds
    from ``(seed, name, index)`` only — independent of generation order,
    which is what makes the parallel fan-out bit-identical.
    """
    streams = RandomStreams(config.seed)
    job = generate_job(streams.fork("jobs", index), index, config.workload)
    subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                  config.nodes_per_job)
    environment = GridEnvironment(subset)
    horizon = max(1, int(job.deadline * config.horizon_factor))
    if config.busy_fraction > 0:
        environment.apply_background_load(
            streams.fork("background", index), config.busy_fraction,
            horizon, max_burst=config.background_burst)
    generator = StrategyGenerator(subset, policy_models)
    calendars = environment.snapshot()
    return [generator.generate(job, calendars, stype)
            for stype in config.stypes]


#: Per-process state of the study workers (pool + policy models are
#: deterministic functions of the config, rebuilt once per process).
_WORKER_STATE: dict[str, Any] = {}


def _init_study_worker(config: ApplicationStudyConfig) -> None:
    streams = RandomStreams(config.seed)
    _WORKER_STATE["pool"] = generate_pool(streams.stream("pool"),
                                          config.workload)
    _WORKER_STATE["policy_models"] = default_policy_models()
    _WORKER_STATE["config"] = config


def _study_worker_job(index: int
                      ) -> dict[StrategyType, StrategyAggregate]:
    """One job's strategies, pre-aggregated.

    Workers ship per-job aggregates (a handful of floats) rather than
    whole strategies, so the IPC payload stays small; the parent merges
    them in job order, which is exactly the fold the sequential path
    performs.
    """
    strategies = _study_job_strategies(_WORKER_STATE["pool"],
                                       _WORKER_STATE["policy_models"],
                                       _WORKER_STATE["config"], index)
    return aggregate_strategies(strategies)


def application_level_study(config: Optional[ApplicationStudyConfig] = None,
                            workers: Optional[int] = 1
                            ) -> dict[StrategyType, StrategyAggregate]:
    """Generate strategies for isolated random jobs and aggregate.

    ``workers`` > 1 fans the jobs out over a process pool; results are
    merged in job order, so the aggregates are bit-identical to the
    sequential path for any worker count (``None``: one per CPU).
    """
    config = config or ApplicationStudyConfig()
    workers = _effective_workers(workers, config.n_jobs)

    if workers <= 1:
        streams = RandomStreams(config.seed)
        pool = generate_pool(streams.stream("pool"), config.workload)
        policy_models = default_policy_models()
        strategies = []
        for index in range(config.n_jobs):
            strategies.extend(_study_job_strategies(
                pool, policy_models, config, index))
        return aggregate_strategies(strategies)

    merged: dict[StrategyType, StrategyAggregate] = {}
    chunksize = max(1, config.n_jobs // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_study_worker,
                             initargs=(config,)) as executor:
        # `map` yields in submission order — the deterministic merge:
        # folding per-job aggregates in job order reproduces the
        # sequential fold sample for sample.
        for job_aggregates in executor.map(_study_worker_job,
                                           range(config.n_jobs),
                                           chunksize=chunksize):
            for stype, aggregate in job_aggregates.items():
                bucket = merged.get(stype)
                if bucket is None:
                    merged[stype] = aggregate
                else:
                    bucket.merge(aggregate)
    return merged


@dataclass(frozen=True)
class CoordinatedStudyConfig:
    """Parameters of the Fig. 4 coordinated job-flow study."""

    seed: int = 2009
    n_jobs: int = 60
    #: Shared-environment background utilization (high enough that the
    #: family objectives bind; see EXPERIMENTS.md calibration notes).
    busy_fraction: float = 0.45
    #: Simulation horizon (slots); releases spread over its first 60%.
    horizon: int = 240
    #: Drift: expected background events per slot (drives TTL).
    drift_rate: float = 0.4
    #: Noise on the forecast estimation level (uniform half-width).
    forecast_noise: float = 0.25
    stypes: tuple[StrategyType, ...] = FIG4_TYPES
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)


@dataclass
class CoordinatedRow:
    """Per-family outcome of the coordinated study."""

    stype: StrategyType
    committed: int = 0
    rejected: int = 0
    load_by_group: dict[NodeGroup, float] = field(default_factory=dict)
    #: CF of the activated schedule per unit of job volume.
    cost_per_volume: float = 0.0
    #: Actual total task execution (reserved occupancy) over best-case work.
    execution_stretch: float = 0.0
    #: Job completion time over the best-case critical path ("slowness").
    completion_stretch: float = 0.0
    #: Mean strategy time-to-live in slots (capped at the horizon).
    ttl: float = 0.0
    #: Mean start-deviation / run-time ratio of executed jobs.
    start_deviation_ratio: float = 0.0
    #: Mean supporting-schedule switches during the TTL replay.
    switches: float = 0.0


def _coordinated_family(config: CoordinatedStudyConfig,
                        stype: StrategyType) -> CoordinatedRow:
    """One family's full shared-environment run (independent seeds)."""
    policy_models = default_policy_models()
    streams = RandomStreams(config.seed)
    pool = generate_pool(streams.stream("pool"), config.workload)
    environment = GridEnvironment(pool)
    if config.busy_fraction > 0:
        environment.apply_background_load(
            streams.stream("background"), config.busy_fraction,
            config.horizon)
    generator = StrategyGenerator(pool, policy_models)
    row = CoordinatedRow(stype=stype)
    costs, stretches, ttls, deviations, switches = [], [], [], [], []
    completions = []

    for index in range(config.n_jobs):
        job_rng = streams.fork("jobs", index)
        job = generate_job(job_rng, index, config.workload)
        release = int(streams.fork("release", index).integers(
            0, max(1, int(config.horizon * 0.6))))
        actual_rng = streams.fork("actual", index)
        actual_level = float(actual_rng.uniform(0.0, 1.0))
        noise = float(actual_rng.uniform(-config.forecast_noise,
                                         config.forecast_noise))
        forecast_level = min(1.0, max(0.0, actual_level + noise))

        calendars = environment.snapshot()
        strategy = generator.generate(job, calendars, stype,
                                      release=release)
        chosen = (strategy.cheapest_covering(forecast_level)
                  or strategy.best_schedule())
        if chosen is None or not environment.can_commit(
                chosen.distribution):
            row.rejected += 1
            continue
        environment.commit_distribution(chosen.distribution)
        row.committed += 1

        scheduled = strategy.scheduled_job
        costs.append(chosen.outcome.cost / scheduled.total_volume())

        # Replay with the *actual* level: when the activated variant
        # planned below it (forecast undershoot), producers run past
        # their reservations and successors start late — the start-
        # deviation source of Fig. 4c.
        trace = simulate_execution(
            scheduled, chosen.distribution, pool,
            actual_level=actual_level,
            transfer_model=policy_models[strategy.spec.policy])
        best_work = sum(task.best_time
                        for task in scheduled.tasks.values())
        reserved = sum(p.duration for p in chosen.distribution)
        stretches.append(reserved / best_work if best_work else 0.0)
        critical_path = max(1, job.minimal_makespan(1.0))
        completions.append(
            (chosen.distribution.makespan - release) / critical_path)
        deviations.append(trace.deviation_to_runtime_ratio())

        drift = environment.sample_background_events(
            streams.fork("drift", index), config.drift_rate,
            config.horizon)
        ttl_result = strategy_time_to_live(
            strategy, drift, horizon=config.horizon,
            min_level=forecast_level)
        ttls.append(ttl_result.ttl)
        switches.append(ttl_result.switches)

    row.load_by_group = environment.utilization_by_group_tagged(
        0, config.horizon)
    row.cost_per_volume = mean(costs)
    row.execution_stretch = mean(stretches)
    row.completion_stretch = mean(completions)
    row.ttl = mean(ttls)
    row.start_deviation_ratio = mean(deviations)
    row.switches = mean(switches)
    return row


def coordinated_flow_study(config: Optional[CoordinatedStudyConfig] = None,
                           workers: Optional[int] = 1
                           ) -> dict[StrategyType, CoordinatedRow]:
    """Run the shared-environment study once per strategy family.

    Every family sees the *same* jobs, node pool, background load, and
    drift events (identical seeds), so differences between rows are the
    strategies' doing.  Families are mutually independent (each owns a
    fresh environment), so ``workers`` > 1 fans them out over processes;
    rows merge in family order and match the sequential results exactly.
    """
    config = config or CoordinatedStudyConfig()
    workers = _effective_workers(workers, len(config.stypes))
    if workers <= 1:
        return {stype: _coordinated_family(config, stype)
                for stype in config.stypes}
    with ProcessPoolExecutor(max_workers=workers) as executor:
        rows = list(executor.map(_coordinated_family, repeat(config),
                                 config.stypes))
    return dict(zip(config.stypes, rows))
