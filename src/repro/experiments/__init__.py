"""Experiment harness: one module per table/figure of the paper.

Registry keys match the ids used in DESIGN.md and EXPERIMENTS.md.
"""

from typing import Callable

from . import (
    abl_baselines,
    abl_strategy_size,
    ext_local_policies,
    ext_reservations,
    fig2_example,
    fig3_admissible,
    fig3_collisions,
    fig4_cost_time,
    fig4_load,
    fig4_ttl_deviation,
    sens_policy,
)
from .common import ExperimentTable, select_nodes_for_job
from .study import (
    ApplicationStudyConfig,
    CoordinatedRow,
    CoordinatedStudyConfig,
    application_level_study,
    coordinated_flow_study,
)

#: All runnable experiments, by id.
EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "fig2": fig2_example.run,
    "fig3a": fig3_admissible.run,
    "fig3b": fig3_collisions.run,
    "fig4a": fig4_load.run,
    "fig4b": fig4_cost_time.run,
    "fig4c": fig4_ttl_deviation.run,
    "ext-local": ext_local_policies.run,
    "ext-reservations": ext_reservations.run,
    "abl-dp": abl_baselines.run,
    "abl-strategy": abl_strategy_size.run,
    "sens-policy": sens_policy.run,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentTable",
    "select_nodes_for_job",
    "ApplicationStudyConfig",
    "application_level_study",
    "CoordinatedStudyConfig",
    "CoordinatedRow",
    "coordinated_flow_study",
]
