"""Experiment harness: one module per table/figure of the paper.

Registry keys match the ids used in DESIGN.md and EXPERIMENTS.md.
Every module declares its parameter sweep as a
:class:`~repro.platform.StudyGrid` (the ``STUDIES`` registry below
collects the default-config grids for the ``repro study`` CLI); the
``run`` functions drive those grids and format the classic
:class:`ExperimentTable` views.
"""

from typing import Callable

from ..platform import StudyGrid
from . import (
    abl_baselines,
    abl_strategy_size,
    ext_local_policies,
    ext_reservations,
    fig2_example,
    fig3_admissible,
    fig3_collisions,
    fig4_cost_time,
    fig4_load,
    fig4_ttl_deviation,
    sens_policy,
)
from .common import ExperimentTable, select_nodes_for_job
from .study import (
    ApplicationStudyConfig,
    CoordinatedRow,
    CoordinatedStudyConfig,
    application_grid,
    application_level_study,
    coordinated_flow_study,
    coordinated_grid,
)

#: All runnable experiments, by id.
EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "fig2": fig2_example.run,
    "fig3a": fig3_admissible.run,
    "fig3b": fig3_collisions.run,
    "fig4a": fig4_load.run,
    "fig4b": fig4_cost_time.run,
    "fig4c": fig4_ttl_deviation.run,
    "ext-local": ext_local_policies.run,
    "ext-reservations": ext_reservations.run,
    "abl-dp": abl_baselines.run,
    "abl-strategy": abl_strategy_size.run,
    "sens-policy": sens_policy.run,
}

#: Default-config study grids, by id — what ``repro study`` operates
#: on.  Fig. 3a/3b share the "application" grid and Fig. 4b/4c the
#: "coordinated" grid (identical cells, so listing them separately
#: would only recompute the same content-addressed keys).
STUDIES: dict[str, Callable[[], StudyGrid]] = {
    "application": application_grid,
    "coordinated": coordinated_grid,
    "fig2": fig2_example.grid,
    "fig4a": fig4_load.grid,
    "ext-local": ext_local_policies.grid,
    "ext-reservations": ext_reservations.grid,
    "abl-dp": abl_baselines.grid,
    "abl-strategy": abl_strategy_size.grid,
    "sens-policy": sens_policy.grid,
}

__all__ = [
    "EXPERIMENTS",
    "STUDIES",
    "ExperimentTable",
    "select_nodes_for_job",
    "ApplicationStudyConfig",
    "application_grid",
    "application_level_study",
    "CoordinatedStudyConfig",
    "CoordinatedRow",
    "coordinated_flow_study",
    "coordinated_grid",
]
