"""Fig. 4b reproduction: relative job completion cost and relative task
execution time for MS1 / S2 / S3.

Paper: "Lowest-cost strategies are the 'slowest' ones like S3"; "Less
accurate strategies like MS1 provide longer task completion time, than
more accurate ones like S2".  Bars are relative (max = 1), matching the
figure's presentation.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.stats import normalize_relative
from ..platform import StudyGrid
from .common import ExperimentTable
from .study import (
    FIG4_TYPES,
    CoordinatedStudyConfig,
    coordinated_flow_study,
    coordinated_grid,
)

__all__ = ["run", "grid"]


def grid(config: Optional[CoordinatedStudyConfig] = None) -> StudyGrid:
    """Fig. 4b rides the shared coordinated study grid (MS1/S2/S3), so
    its cells are cached once for both Fig. 4b and Fig. 4c."""
    return coordinated_grid(config or CoordinatedStudyConfig())


def run(n_jobs: int = 60, seed: int = 2009,
        config: Optional[CoordinatedStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Regenerate the Fig. 4b relative bars."""
    config = config or CoordinatedStudyConfig(seed=seed, n_jobs=n_jobs,
                                              stypes=FIG4_TYPES)
    rows = coordinated_flow_study(config, workers=workers)

    costs = {stype.value: rows[stype].cost_per_volume
             for stype in config.stypes}
    stretches = {stype.value: rows[stype].execution_stretch
                 for stype in config.stypes}
    relative_cost = normalize_relative(costs)
    relative_time = normalize_relative(stretches)

    completions = {stype.value: rows[stype].completion_stretch
                   for stype in config.stypes}
    relative_completion = normalize_relative(completions)

    table = ExperimentTable(
        experiment_id="fig4b",
        title=(f"Relative job completion cost and task execution time "
               f"({config.n_jobs} jobs per family)"),
        columns=["strategy", "relative cost", "relative exec time",
                 "relative completion", "CF per volume",
                 "reserved/best work"],
    )
    for stype in config.stypes:
        table.add_row(**{
            "strategy": stype.value,
            "relative cost": relative_cost[stype.value],
            "relative exec time": relative_time[stype.value],
            "relative completion": relative_completion[stype.value],
            "CF per volume": rows[stype].cost_per_volume,
            "reserved/best work": rows[stype].execution_stretch,
        })
    table.notes.append(
        "shape contract: S3 clearly cheapest (paper shows roughly half "
        "the cost of the others); S2's task execution time below MS1's")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
