"""Fig. 2 reproduction: the worked example of Section 3.

Rebuilds the three supporting distributions of Fig. 2b with their CF
values, lists the four critical works (12, 11, 10, 9 slots), runs the
critical works method on the job, and shows the collision between P4
and P5 plus its resolution.

The paper prints CF1 = CF3 = 41 and CF2 = 37; those values depend on
real load times only partially recoverable from the figure.  With our
reservations sized exactly to the estimate table, the reproduced costs
differ by a constant ceil-rounding offset but preserve the ordering:
the middle distribution is strictly cheapest, the outer two tie.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.calendar import ReservationCalendar
from ..core.costs import distribution_cost
from ..core.critical_works import CriticalWorksScheduler
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution, Placement
from ..platform import StudyGrid
from ..workload.paper_example import fig2_job, fig2_pool
from .common import ExperimentTable

__all__ = ["paper_distributions", "run", "grid", "cell"]

#: Node allocations of the three distributions in Fig. 2b
#: (task -> node type), read off the figure labels like "P6/4".
_PAPER_ALLOCATIONS: dict[str, dict[str, int]] = {
    "Distribution 1": {"P1": 1, "P2": 1, "P3": 3, "P4": 1, "P5": 2, "P6": 4},
    "Distribution 2": {"P1": 1, "P2": 1, "P3": 3, "P4": 3, "P5": 4, "P6": 1},
    "Distribution 3": {"P1": 4, "P2": 1, "P3": 3, "P4": 1, "P5": 2, "P6": 1},
}


def _timed_distribution(job: Job, pool: ResourcePool,
                        allocation: dict[str, int], name: str
                        ) -> Distribution:
    """Timings from earliest-consistent starts given the allocations."""
    placements: dict[str, Placement] = {}
    for task_id in job.topological_order():
        node = pool.node(allocation[task_id])
        ready = 0
        for pred in job.predecessors(task_id):
            pred_place = placements[pred]
            lag = 0 if pred_place.node_id == node.node_id else 1
            ready = max(ready, pred_place.end + lag)
        # Same-node serialization (e.g. P2 after P1 on node 1).
        for placed in placements.values():
            if placed.node_id == node.node_id:
                ready = max(ready, placed.end)
        duration = job.task(task_id).duration_on(node.performance)
        placements[task_id] = Placement(task_id, node.node_id, ready,
                                        ready + duration)
    return Distribution(job.job_id, placements.values(), scenario=name)


def paper_distributions(job: Job | None = None,
                        pool: ResourcePool | None = None
                        ) -> dict[str, Distribution]:
    """The three supporting distributions of Fig. 2b, with timings."""
    job = job or fig2_job()
    pool = pool or fig2_pool()
    return {
        name: _timed_distribution(job, pool, allocation, name)
        for name, allocation in _PAPER_ALLOCATIONS.items()
    }


def cell(_config: Mapping[str, Any]) -> dict[str, Any]:
    """The whole worked example as one grid cell (it has no axes)."""
    job = fig2_job()
    pool = fig2_pool()

    rows: list[dict[str, Any]] = []
    for name, distribution in paper_distributions(job, pool).items():
        cost = distribution_cost(distribution, job, pool)
        allocations = " ".join(
            f"{p.task_id}/{p.node_id}"
            for p in sorted(distribution, key=lambda p: p.task_id))
        rows.append({"distribution": name, "allocations": allocations,
                     "CF": cost, "makespan": distribution.makespan,
                     "admissible":
                         distribution.is_admissible(job.deadline)})

    scheduler = CriticalWorksScheduler(pool)
    calendars = {node.node_id: ReservationCalendar() for node in pool}
    works = scheduler.critical_works(job)
    outcome = scheduler.build_schedule(job, calendars)
    method = outcome.distribution
    allocations = " ".join(
        f"{p.task_id}/{p.node_id}"
        for p in sorted(method, key=lambda p: p.task_id))
    rows.append({"distribution": "critical works method",
                 "allocations": allocations, "CF": outcome.cost,
                 "makespan": outcome.makespan,
                 "admissible": outcome.admissible})

    notes = [
        "critical works (length, chain): "
        + "; ".join(f"{length}: {'-'.join(chain)}"
                    for length, chain in works)
    ]
    notes.extend(f"collision resolved: {collision}"
                 for collision in outcome.collisions)
    return {"table_rows": rows, "notes": notes}


def grid() -> StudyGrid:
    """The worked example as a degenerate (single-cell) grid."""
    return StudyGrid(
        study="fig2",
        runner="repro.experiments.fig2_example:cell",
        axes={},
        base={},
    )


def run(**_ignored) -> ExperimentTable:
    """Reproduce the Fig. 2 example end to end."""
    results = grid().run()
    payload = results[0]
    table = ExperimentTable(
        experiment_id="fig2",
        title="Worked example: supporting distributions of the Fig. 2 job",
        columns=["distribution", "allocations", "CF", "makespan",
                 "admissible"],
    )
    for row in payload["table_rows"]:
        table.add_row(**row)
    table.notes.extend(payload["notes"])
    table.notes.append(
        "paper CF values 41/37/41 use real load times not recoverable "
        "from the figure; the ordering (middle cheapest, outer tie) is "
        "the reproduced claim")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
