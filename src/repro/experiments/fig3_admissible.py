"""Fig. 3a reproduction: percentage of admissible application-level
schedules per strategy family.

Paper: "For 12000 randomly generated jobs there were 38% admissible
solutions for S1 strategy, 37% for S2, and 33% for S3" — schedules
built for resources not assigned to other independent jobs, i.e. under
background load, without job-flow coordination.
"""

from __future__ import annotations

from typing import Optional

from ..core.strategy import StrategyType
from ..platform import StudyGrid
from .common import ExperimentTable
from .study import (
    ApplicationStudyConfig,
    application_grid,
    application_level_study,
)

__all__ = ["run", "grid"]

#: The percentages printed in Fig. 3a.
PAPER_ADMISSIBLE = {
    StrategyType.S1: 38.0,
    StrategyType.S2: 37.0,
    StrategyType.S3: 33.0,
}


def grid(config: Optional[ApplicationStudyConfig] = None) -> StudyGrid:
    """Fig. 3a rides the shared application-level study grid, so its
    cells are cached once for both Fig. 3 panels."""
    return application_grid(config or ApplicationStudyConfig())


def run(n_jobs: int = 200, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Regenerate the Fig. 3a percentages."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    aggregates = application_level_study(config, workers=workers)

    table = ExperimentTable(
        experiment_id="fig3a",
        title=(f"Admissible application-level schedules "
               f"({config.n_jobs} jobs, background "
               f"{config.busy_fraction:.0%})"),
        columns=["strategy", "admissible %", "paper %", "jobs",
                 "mean coverage"],
    )
    for stype in config.stypes:
        aggregate = aggregates[stype]
        table.add_row(**{
            "strategy": stype.value,
            "admissible %": aggregate.admissible_pct,
            "paper %": PAPER_ADMISSIBLE.get(stype, float("nan")),
            "jobs": aggregate.jobs,
            "mean coverage": aggregate.mean_coverage,
        })
    table.notes.append(
        "shape contract: S1 >= S2 > S3, all roughly in the one-third "
        "regime; absolute values depend on the background-load model")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
