"""Ablation: strategy completeness — S1 vs MS1.

Section 4: "The strategy MS1 is less complete than the strategy S1 in
the sense of coverage of events in distributed environment ... The type
S1 has more computational expenses than MS1."  This ablation quantifies
the trade-off: generation expense (DP evaluations) versus event
coverage and time-to-live under drift.
"""

from __future__ import annotations

from typing import Optional

from ..core.strategy import StrategyGenerator, StrategyType
from ..flow.reallocation import strategy_time_to_live
from ..grid.environment import GridEnvironment
from ..metrics.stats import mean
from ..sim.rng import RandomStreams
from ..workload.generator import generate_job, generate_pool
from .common import ExperimentTable, select_nodes_for_job
from .study import ApplicationStudyConfig

__all__ = ["run"]


def run(n_jobs: int = 150, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None,
        drift_rate: float = 0.2) -> ExperimentTable:
    """Measure expense vs coverage for the full and truncated families."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    streams = RandomStreams(config.seed)
    pool = generate_pool(streams.stream("pool"), config.workload)

    stats = {stype: {"expense": [], "coverage": [], "ttl": [],
                     "admissible": 0}
             for stype in (StrategyType.S1, StrategyType.MS1)}

    for index in range(config.n_jobs):
        job = generate_job(streams.fork("jobs", index), index,
                           config.workload)
        subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                      config.nodes_per_job)
        environment = GridEnvironment(subset)
        horizon = max(1, int(job.deadline * config.horizon_factor))
        environment.apply_background_load(
            streams.fork("background", index), config.busy_fraction,
            horizon, max_burst=config.background_burst)
        generator = StrategyGenerator(subset)
        calendars = environment.snapshot()
        drift = environment.sample_background_events(
            streams.fork("drift", index), drift_rate, horizon)

        for stype in stats:
            strategy = generator.generate(job, calendars, stype)
            bucket = stats[stype]
            bucket["expense"].append(strategy.generation_expense)
            bucket["coverage"].append(strategy.coverage)
            if strategy.admissible:
                bucket["admissible"] += 1
            bucket["ttl"].append(
                strategy_time_to_live(strategy, drift, horizon).ttl)

    table = ExperimentTable(
        experiment_id="abl-strategy",
        title=(f"Strategy completeness: S1 vs MS1 "
               f"({config.n_jobs} jobs)"),
        columns=["strategy", "mean expense", "mean coverage",
                 "admissible %", "mean TTL"],
    )
    for stype, bucket in stats.items():
        table.add_row(**{
            "strategy": stype.value,
            "mean expense": mean(bucket["expense"]),
            "mean coverage": mean(bucket["coverage"]),
            "admissible %": 100.0 * bucket["admissible"] / config.n_jobs,
            "mean TTL": mean(bucket["ttl"]),
        })
    table.notes.append(
        "expected: S1 costs more to generate (more supporting "
        "schedules) but covers more events and survives drift longer")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
