"""Ablation: strategy completeness — S1 vs MS1.

Section 4: "The strategy MS1 is less complete than the strategy S1 in
the sense of coverage of events in distributed environment ... The type
S1 has more computational expenses than MS1."  This ablation quantifies
the trade-off: generation expense (DP evaluations) versus event
coverage and time-to-live under drift.

The sweep is a platform grid over (family × job block); every cell
rebuilds its per-job environments from pure ``(seed, stream, index)``
forks, so cells are independent and the block fold matches the
single-pass loop sample for sample.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..core.strategy import StrategyGenerator, StrategyType
from ..flow.reallocation import strategy_time_to_live
from ..grid.environment import GridEnvironment
from ..metrics.stats import mean
from ..platform import Results, StudyGrid
from ..sim.rng import RandomStreams
from ..workload.generator import generate_job, generate_pool
from .common import ExperimentTable, select_nodes_for_job
from .study import (
    BLOCK_SIZE,
    ApplicationStudyConfig,
    _workload_from_config,
    _workload_to_config,
)

__all__ = ["run", "grid", "cell"]

#: Families compared, in presentation order.
FAMILIES = (StrategyType.S1, StrategyType.MS1)


def cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: one family over one block of jobs."""
    stype = StrategyType[config["stype"]]
    study = ApplicationStudyConfig(
        seed=config["seed"],
        n_jobs=0,
        busy_fraction=config["busy_fraction"],
        nodes_per_job=config["nodes_per_job"],
        horizon_factor=config["horizon_factor"],
        background_burst=config["background_burst"],
        workload=_workload_from_config(config["workload"]),
    )
    drift_rate = config["drift_rate"]
    streams = RandomStreams(study.seed)
    pool = generate_pool(streams.stream("pool"), study.workload)

    expense: list[int] = []
    coverage: list[float] = []
    ttl: list[float] = []
    admissible = 0
    lo, hi = config["block"]
    for index in range(lo, hi):
        job = generate_job(streams.fork("jobs", index), index,
                           study.workload)
        subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                      study.nodes_per_job)
        environment = GridEnvironment(subset)
        horizon = max(1, int(job.deadline * study.horizon_factor))
        environment.apply_background_load(
            streams.fork("background", index), study.busy_fraction,
            horizon, max_burst=study.background_burst)
        generator = StrategyGenerator(subset)
        calendars = environment.snapshot()
        drift = environment.sample_background_events(
            streams.fork("drift", index), drift_rate, horizon)

        strategy = generator.generate(job, calendars, stype)
        expense.append(strategy.generation_expense)
        coverage.append(strategy.coverage)
        if strategy.admissible:
            admissible += 1
        ttl.append(strategy_time_to_live(strategy, drift, horizon).ttl)
    return {"expense": expense, "coverage": coverage, "ttl": ttl,
            "admissible": admissible}


def grid(config: Optional[ApplicationStudyConfig] = None,
         drift_rate: float = 0.2,
         block_size: int = BLOCK_SIZE) -> StudyGrid:
    """The ablation as a grid: family × job block."""
    config = config or ApplicationStudyConfig(n_jobs=150)
    blocks = [(lo, min(lo + block_size, config.n_jobs))
              for lo in range(0, config.n_jobs, block_size)]
    return StudyGrid(
        study="abl-strategy",
        runner="repro.experiments.abl_strategy_size:cell",
        axes={"stype": [stype.name for stype in FAMILIES],
              "block": blocks},
        base={
            "seed": config.seed,
            "busy_fraction": config.busy_fraction,
            "nodes_per_job": config.nodes_per_job,
            "horizon_factor": config.horizon_factor,
            "background_burst": config.background_burst,
            "drift_rate": drift_rate,
            "workload": _workload_to_config(config.workload),
        },
    )


def _table_from_results(results: Results, n_jobs: int) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="abl-strategy",
        title=(f"Strategy completeness: S1 vs MS1 "
               f"({n_jobs} jobs)"),
        columns=["strategy", "mean expense", "mean coverage",
                 "admissible %", "mean TTL"],
    )
    for (name,), bucket in results.group_by("stype").items():
        expense = [v for row in bucket for v in row["expense"]]
        coverage = [v for row in bucket for v in row["coverage"]]
        ttls = [v for row in bucket for v in row["ttl"]]
        table.add_row(**{
            "strategy": StrategyType[name].value,
            "mean expense": mean(expense),
            "mean coverage": mean(coverage),
            "admissible %": (100.0 * sum(row["admissible"]
                                         for row in bucket) / n_jobs),
            "mean TTL": mean(ttls),
        })
    table.notes.append(
        "expected: S1 costs more to generate (more supporting "
        "schedules) but covers more events and survives drift longer")
    return table


def run(n_jobs: int = 150, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None,
        drift_rate: float = 0.2, workers: int = 1) -> ExperimentTable:
    """Measure expense vs coverage for the full and truncated families."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    results = grid(config, drift_rate=drift_rate).run(workers=workers)
    return _table_from_results(results, config.n_jobs)


if __name__ == "__main__":  # pragma: no cover
    run().show()
