"""Fig. 3b reproduction: collision distribution over node groups.

Paper: collisions split 32% fast / 68% slow for S1, 56% / 44% for S2,
and 74% / 26% for S3 ("fast" nodes are 2–3× faster than "slow" ones;
we pool medium and slow on the slow side accordingly).
"""

from __future__ import annotations

from typing import Optional

from ..core.strategy import StrategyType
from ..platform import StudyGrid
from .common import ExperimentTable
from .study import (
    ApplicationStudyConfig,
    application_grid,
    application_level_study,
)

__all__ = ["run", "grid"]


def grid(config: Optional[ApplicationStudyConfig] = None) -> StudyGrid:
    """Fig. 3b rides the shared application-level study grid, so its
    cells are cached once for both Fig. 3 panels."""
    return application_grid(config or ApplicationStudyConfig())

#: The fast/slow percentages printed in Fig. 3b.
PAPER_SPLIT = {
    StrategyType.S1: (32.0, 68.0),
    StrategyType.S2: (56.0, 44.0),
    StrategyType.S3: (74.0, 26.0),
}


def run(n_jobs: int = 200, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Regenerate the Fig. 3b collision splits."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    aggregates = application_level_study(config, workers=workers)

    table = ExperimentTable(
        experiment_id="fig3b",
        title=(f"Collision split over node groups "
               f"({config.n_jobs} jobs)"),
        columns=["strategy", "fast %", "slow %", "paper fast %",
                 "paper slow %", "collisions"],
    )
    for stype in config.stypes:
        aggregate = aggregates[stype]
        fast, slow = aggregate.collision_split
        paper_fast, paper_slow = PAPER_SPLIT.get(stype,
                                                 (float("nan"),) * 2)
        table.add_row(**{
            "strategy": stype.value,
            "fast %": fast,
            "slow %": slow,
            "paper fast %": paper_fast,
            "paper slow %": paper_slow,
            "collisions": aggregate.collisions.total,
        })
    table.notes.append(
        "shape contract: S1 slow-heavy, S2 roughly even with a fast "
        "lean, S3 strongly fast-heavy (monopolized top nodes)")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
