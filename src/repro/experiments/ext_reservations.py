"""Extension: what advance reservations buy (and cost) at the VO level.

The paper's QoS story rests on wall-time advance reservations: a
committed supporting schedule *guarantees* the completion time, at the
price of admission control (some jobs are rejected) and reserved-but-
unused capacity.  The natural alternative is best-effort scheduling:
accept everything, place each task in the earliest currently-free slot,
and hope.

This experiment runs the same arrival stream both ways:

* **reservation mode** — the full framework: strategies, admission,
  wall-time commitment (jobs whose strategies are inadmissible are
  rejected up front);
* **best-effort mode** — greedy earliest-finish placement with no
  deadline-based admission (every job is accepted; the deadline is
  checked only after the fact).

Each mode is one platform grid cell (a full shared-environment run —
commits couple the jobs, so modes can't be block-split), reported as
admission rate, deadline-hit rate among *accepted* jobs, and the
overall deadline-hit rate among *all submitted* jobs — the QoS
crossover the paper's framework targets.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..baselines.adapters import GreedyScheduler
from ..core.strategy import StrategyGenerator, StrategyType
from ..grid.environment import GridEnvironment
from ..grid.execution import simulate_execution
from ..grid.data import default_policy_models
from ..core.strategy import DataPolicyKind
from ..platform import StudyGrid
from ..sim.rng import RandomStreams
from ..workload.generator import WorkloadConfig, generate_job, generate_pool
from .common import ExperimentTable
from .study import _workload_from_config, _workload_to_config

__all__ = ["run", "grid", "cell"]

#: Operating modes, in presentation order.
MODES = ("reservations", "best-effort")


def cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: the full arrival stream under one mode."""
    mode = config["mode"]
    seed = config["seed"]
    n_jobs = config["n_jobs"]
    busy_fraction = config["busy_fraction"]
    horizon = config["horizon"]
    workload = _workload_from_config(config["workload"])
    model = default_policy_models()[DataPolicyKind.REPLICATION]

    streams = RandomStreams(seed)
    pool = generate_pool(streams.stream("pool"), workload)
    environment = GridEnvironment(pool)
    if busy_fraction > 0:
        environment.apply_background_load(
            streams.stream("background"), busy_fraction, horizon,
            max_burst=20)
    generator = StrategyGenerator(pool)
    best_effort = GreedyScheduler(model)

    accepted = 0
    met = 0
    for index in range(n_jobs):
        job = generate_job(streams.fork("jobs", index), index,
                           workload)
        release = int(streams.fork("release", index).integers(
            0, int(horizon * 0.6)))
        actual_level = float(streams.fork("actual", index)
                             .uniform(0.0, 1.0))
        calendars = environment.snapshot()

        if mode == "reservations":
            strategy = generator.generate(job, calendars,
                                          StrategyType.S1,
                                          release=release)
            chosen = (strategy.cheapest_covering(actual_level)
                      or strategy.best_schedule())
            if chosen is None or not environment.can_commit(
                    chosen.distribution):
                continue  # rejected by admission control
            environment.commit_distribution(chosen.distribution)
            accepted += 1
            trace = simulate_execution(
                strategy.scheduled_job, chosen.distribution, pool,
                actual_level=min(actual_level, chosen.level),
                transfer_model=model)
            if trace.makespan <= release + job.deadline:
                met += 1
        else:
            distribution = best_effort.schedule(
                _unbounded(job), pool, calendars,
                level=0.0, release=release).distribution
            if distribution is None:
                continue  # only when literally nothing fits
            environment.commit_distribution(distribution)
            accepted += 1
            trace = simulate_execution(
                job, distribution, pool, actual_level=actual_level,
                transfer_model=model)
            if trace.makespan <= release + job.deadline:
                met += 1

    return {"accepted": accepted, "met": met}


def grid(n_jobs: int = 80, seed: int = 2009,
         busy_fraction: float = 0.25, horizon: int = 400,
         workload: Optional[WorkloadConfig] = None) -> StudyGrid:
    """The mode comparison as a grid: one cell per operating mode."""
    workload = workload or WorkloadConfig()
    return StudyGrid(
        study="ext-reservations",
        runner="repro.experiments.ext_reservations:cell",
        axes={"mode": list(MODES)},
        base={
            "seed": seed,
            "n_jobs": n_jobs,
            "busy_fraction": busy_fraction,
            "horizon": horizon,
            "workload": _workload_to_config(workload),
        },
    )


def run(n_jobs: int = 80, seed: int = 2009,
        busy_fraction: float = 0.25, horizon: int = 400,
        workload: Optional[WorkloadConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Compare reservation-based and best-effort operation."""
    results = grid(n_jobs, seed, busy_fraction, horizon,
                   workload).run(workers=workers)

    table = ExperimentTable(
        experiment_id="ext-reservations",
        title=(f"Advance reservations vs best effort "
               f"({n_jobs} jobs, background {busy_fraction:.0%})"),
        columns=["mode", "accepted %", "deadline hit % (accepted)",
                 "deadline hit % (all)"],
    )
    for row in results:
        accepted = row["accepted"]
        table.add_row(**{
            "mode": row["mode"],
            "accepted %": 100.0 * accepted / n_jobs,
            "deadline hit % (accepted)":
                (100.0 * row["met"] / accepted) if accepted else 0.0,
            "deadline hit % (all)": 100.0 * row["met"] / n_jobs,
        })
    table.notes.append(
        "reservations trade acceptance for certainty: admitted jobs "
        "virtually always meet their fixed completion time, while "
        "best-effort accepts everything and lets deadlines slip")
    return table


def _unbounded(job):
    """The same job without a deadline (best effort never rejects)."""
    from ..core.job import Job

    return Job(job.job_id, job.tasks.values(), job.transfers,
               deadline=0, owner=job.owner)


if __name__ == "__main__":  # pragma: no cover
    run().show()
