"""Sensitivity of the Fig. 3 shapes to the calibrated policy constants.

The reproduction fixes three constants the paper does not publish
(EXPERIMENTS.md): the replication overlap (S1 transfers), the static
round trip (S3 transfers), and the CF weight of S2's balanced
criterion.  This sweep varies each around its default and reports how
the corresponding family's collision split and admissibility move —
evidence that the reproduced shapes are properties of the model, not of
a single lucky constant.
"""

from __future__ import annotations

from typing import Optional

from ..core.strategy import DataPolicyKind, StrategyGenerator, StrategyType
from ..grid.data import (
    RemoteAccessModel,
    ReplicationModel,
    StaticStorageModel,
)
from ..grid.environment import GridEnvironment
from ..metrics.indices import StrategyAggregate
from ..sim.rng import RandomStreams
from ..workload.generator import generate_job, generate_pool
from .common import ExperimentTable, select_nodes_for_job
from .study import ApplicationStudyConfig

__all__ = ["run"]

#: Swept values per constant (defaults: overlap 0.5, round trip
#: 2.0, CF weight 2.5).
SWEEPS: dict[str, tuple[float, ...]] = {
    "replication overlap (S1)": (0.25, 0.5, 0.75),
    "static round trip (S3)": (1.5, 2.0, 3.0),
    "S2 CF weight": (1.0, 1.75, 2.5),  # default 2.5
}


def _models(overlap: float = 0.5, round_trip: float = 2.0):
    return {
        DataPolicyKind.REPLICATION: ReplicationModel(overlap=overlap),
        DataPolicyKind.REMOTE_ACCESS: RemoteAccessModel(),
        DataPolicyKind.STATIC: StaticStorageModel(round_trip=round_trip),
    }


def _measure(stype: StrategyType, config: ApplicationStudyConfig,
             overlap: float = 0.5, round_trip: float = 2.0,
             cf_weight: Optional[float] = None) -> StrategyAggregate:
    """The application-level study for one family under one setting."""
    streams = RandomStreams(config.seed)
    pool = generate_pool(streams.stream("pool"), config.workload)
    aggregate = StrategyAggregate(stype=stype)
    for index in range(config.n_jobs):
        job = generate_job(streams.fork("jobs", index), index,
                           config.workload)
        subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                      config.nodes_per_job)
        environment = GridEnvironment(subset)
        horizon = max(1, int(job.deadline * config.horizon_factor))
        environment.apply_background_load(
            streams.fork("background", index), config.busy_fraction,
            horizon, max_burst=config.background_burst)
        generator = StrategyGenerator(
            subset, _models(overlap, round_trip),
            balanced_cf_weight=cf_weight)
        aggregate.add(generator.generate(job, environment.snapshot(),
                                         stype))
    return aggregate


def run(n_jobs: int = 60, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None) -> ExperimentTable:
    """Sweep each constant and report the affected family's shape."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)

    table = ExperimentTable(
        experiment_id="sens-policy",
        title=(f"Sensitivity of Fig. 3 shapes to policy constants "
               f"({config.n_jobs} jobs per point)"),
        columns=["constant", "value", "strategy", "admissible %",
                 "fast %", "slow %"],
    )

    def add(constant: str, value: float,
            aggregate: StrategyAggregate) -> None:
        fast, slow = aggregate.collision_split
        table.add_row(**{
            "constant": constant,
            "value": value,
            "strategy": aggregate.stype.value,
            "admissible %": aggregate.admissible_pct,
            "fast %": fast,
            "slow %": slow,
        })

    for overlap in SWEEPS["replication overlap (S1)"]:
        add("replication overlap (S1)", overlap,
            _measure(StrategyType.S1, config, overlap=overlap))
    for round_trip in SWEEPS["static round trip (S3)"]:
        add("static round trip (S3)", round_trip,
            _measure(StrategyType.S3, config, round_trip=round_trip))
    for cf_weight in SWEEPS["S2 CF weight"]:
        add("S2 CF weight", cf_weight,
            _measure(StrategyType.S2, config, cf_weight=cf_weight))

    table.notes.append(
        "expected: S1 remains the least fast-leaning family across the "
        "whole range, S3 stays fast-heavy; S2's fast share falls as "
        "the CF weight grows (more economic pressure toward slow nodes)")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
