"""Sensitivity of the Fig. 3 shapes to the calibrated policy constants.

The reproduction fixes three constants the paper does not publish
(EXPERIMENTS.md): the replication overlap (S1 transfers), the static
round trip (S3 transfers), and the CF weight of S2's balanced
criterion.  This sweep varies each around its default and reports how
the corresponding family's collision split and admissibility move —
evidence that the reproduced shapes are properties of the model, not of
a single lucky constant.

The sweep is a platform grid over (setting × job block): each setting
is a ``[constant, value]`` pair that fixes one policy knob for its
affected family, and blocks fold in cell order into one
:class:`~repro.metrics.indices.StrategyAggregate` per setting.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..core.strategy import DataPolicyKind, StrategyGenerator, StrategyType
from ..grid.data import (
    RemoteAccessModel,
    ReplicationModel,
    StaticStorageModel,
)
from ..grid.environment import GridEnvironment
from ..metrics.indices import StrategyAggregate
from ..platform import StudyGrid
from ..sim.rng import RandomStreams
from ..workload.generator import generate_job, generate_pool
from .common import ExperimentTable, select_nodes_for_job
from .study import (
    BLOCK_SIZE,
    ApplicationStudyConfig,
    _workload_from_config,
    _workload_to_config,
)

__all__ = ["run", "grid", "cell"]

#: Swept values per constant (defaults: overlap 0.5, round trip
#: 2.0, CF weight 2.5).
SWEEPS: dict[str, tuple[float, ...]] = {
    "replication overlap (S1)": (0.25, 0.5, 0.75),
    "static round trip (S3)": (1.5, 2.0, 3.0),
    "S2 CF weight": (1.0, 1.75, 2.5),  # default 2.5
}

#: Which family each swept constant exercises.
_SWEEP_STYPE = {
    "replication overlap (S1)": StrategyType.S1,
    "static round trip (S3)": StrategyType.S3,
    "S2 CF weight": StrategyType.S2,
}


def _models(overlap: float = 0.5, round_trip: float = 2.0):
    return {
        DataPolicyKind.REPLICATION: ReplicationModel(overlap=overlap),
        DataPolicyKind.REMOTE_ACCESS: RemoteAccessModel(),
        DataPolicyKind.STATIC: StaticStorageModel(round_trip=round_trip),
    }


def cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """One grid cell: one (constant, value) setting over a job block."""
    constant, value = config["setting"]
    stype = _SWEEP_STYPE[constant]
    overlap, round_trip, cf_weight = 0.5, 2.0, None
    if constant == "replication overlap (S1)":
        overlap = value
    elif constant == "static round trip (S3)":
        round_trip = value
    elif constant == "S2 CF weight":
        cf_weight = value
    else:
        raise ValueError(f"unknown swept constant {constant!r}")

    study = ApplicationStudyConfig(
        seed=config["seed"],
        n_jobs=0,
        busy_fraction=config["busy_fraction"],
        nodes_per_job=config["nodes_per_job"],
        horizon_factor=config["horizon_factor"],
        background_burst=config["background_burst"],
        workload=_workload_from_config(config["workload"]),
    )
    streams = RandomStreams(study.seed)
    pool = generate_pool(streams.stream("pool"), study.workload)
    aggregate = StrategyAggregate(stype=stype)
    lo, hi = config["block"]
    for index in range(lo, hi):
        job = generate_job(streams.fork("jobs", index), index,
                           study.workload)
        subset = select_nodes_for_job(pool, streams.fork("nodes", index),
                                      study.nodes_per_job)
        environment = GridEnvironment(subset)
        horizon = max(1, int(job.deadline * study.horizon_factor))
        environment.apply_background_load(
            streams.fork("background", index), study.busy_fraction,
            horizon, max_burst=study.background_burst)
        generator = StrategyGenerator(
            subset, _models(overlap, round_trip),
            balanced_cf_weight=cf_weight)
        aggregate.add(generator.generate(job, environment.snapshot(),
                                         stype))
    return aggregate.to_row()


def grid(config: Optional[ApplicationStudyConfig] = None,
         block_size: int = BLOCK_SIZE) -> StudyGrid:
    """The sensitivity sweep as a grid: setting × job block."""
    config = config or ApplicationStudyConfig(n_jobs=60)
    blocks = [(lo, min(lo + block_size, config.n_jobs))
              for lo in range(0, config.n_jobs, block_size)]
    settings = [[constant, value]
                for constant, values in SWEEPS.items()
                for value in values]
    return StudyGrid(
        study="sens-policy",
        runner="repro.experiments.sens_policy:cell",
        axes={"setting": settings, "block": blocks},
        base={
            "seed": config.seed,
            "busy_fraction": config.busy_fraction,
            "nodes_per_job": config.nodes_per_job,
            "horizon_factor": config.horizon_factor,
            "background_burst": config.background_burst,
            "workload": _workload_to_config(config.workload),
        },
    )


def run(n_jobs: int = 60, seed: int = 2009,
        config: Optional[ApplicationStudyConfig] = None,
        workers: int = 1) -> ExperimentTable:
    """Sweep each constant and report the affected family's shape."""
    config = config or ApplicationStudyConfig(seed=seed, n_jobs=n_jobs)
    results = grid(config).run(workers=workers)

    table = ExperimentTable(
        experiment_id="sens-policy",
        title=(f"Sensitivity of Fig. 3 shapes to policy constants "
               f"({config.n_jobs} jobs per point)"),
        columns=["constant", "value", "strategy", "admissible %",
                 "fast %", "slow %"],
    )
    for (setting,), bucket in results.group_by("setting").items():
        constant, value = setting
        aggregate: Optional[StrategyAggregate] = None
        for row in bucket:
            block = StrategyAggregate.from_row(row)
            if aggregate is None:
                aggregate = block
            else:
                aggregate.merge(block)
        assert aggregate is not None
        fast, slow = aggregate.collision_split
        table.add_row(**{
            "constant": constant,
            "value": value,
            "strategy": aggregate.stype.value,
            "admissible %": aggregate.admissible_pct,
            "fast %": fast,
            "slow %": slow,
        })

    table.notes.append(
        "expected: S1 remains the least fast-leaning family across the "
        "whole range, S3 stays fast-heavy; S2's fast share falls as "
        "the CF weight grows (more economic pressure toward slow nodes)")
    return table


if __name__ == "__main__":  # pragma: no cover
    run().show()
