"""Local batch-job management systems.

A queue simulator with pluggable policies (FCFS — the paper's Section 4
setting — plus the Section 5 alternatives: LWF, EASY and conservative
backfilling, gang scheduling), advance reservations, wall-time-based
planning, and start-time forecasting."""

from .batch import (
    AdvanceReservation,
    JobRecord,
    LocalBatchSystem,
    QueuedJob,
)
from .policies import (
    AgedPriorityPolicy,
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    GangPolicy,
    LWFPolicy,
    QueuePolicy,
)
from .manager import Grant, LocalResourceManager, RequestRefused
from .profile import AvailabilityProfile
from .query import QueryError, ResourceQuery
from .request import ResourceRequest

__all__ = [
    "LocalBatchSystem",
    "JobRecord",
    "QueuedJob",
    "AdvanceReservation",
    "QueuePolicy",
    "FCFSPolicy",
    "LWFPolicy",
    "EasyBackfillPolicy",
    "ConservativeBackfillPolicy",
    "AgedPriorityPolicy",
    "GangPolicy",
    "AvailabilityProfile",
    "ResourceRequest",
    "ResourceQuery",
    "QueryError",
    "LocalResourceManager",
    "Grant",
    "RequestRefused",
]
