"""Local job-queue management policies.

Section 5: "Different job-queue management models and scheduling
algorithms can be used (FCFS modifications, least-work-first (LWF),
backfilling, gang scheduling etc.)".  The policies here plug into
:class:`repro.local.batch.LocalBatchSystem`:

* **FCFS** — strict arrival order (the policy used in the paper's
  Section 4 experiments);
* **LWF** — least work first: ascending ``estimate × width``;
* **EASY backfilling** — FCFS head gets a reservation; later jobs may
  jump ahead if they do not delay the head's reserved start;
* **conservative backfilling** — every queued job holds a reservation;
  a job may only start in a hole that delays no reservation;
* **gang** — jobs of the same gang tag are only eligible together (a
  simplified co-scheduling rule).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .batch import QueuedJob

__all__ = [
    "QueuePolicy",
    "FCFSPolicy",
    "LWFPolicy",
    "EasyBackfillPolicy",
    "ConservativeBackfillPolicy",
    "AgedPriorityPolicy",
    "GangPolicy",
]


class QueuePolicy:
    """Base policy: ordering plus backfilling behaviour flags."""

    #: Human-readable policy name (used in experiment tables).
    name = "base"
    #: "none"  — head-of-queue blocking (pure priority order);
    #: "easy"  — one reservation for the head, aggressive backfill;
    #: "conservative" — reservations for every queued job.
    backfill = "none"

    def order(self, queue: Sequence["QueuedJob"], now: int
              ) -> list["QueuedJob"]:
        """Service order of the queue at time ``now``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class FCFSPolicy(QueuePolicy):
    """First come, first served."""

    name = "FCFS"

    def order(self, queue, now):
        """Arrival order with submission-sequence tie-break."""
        return sorted(queue, key=lambda q: (q.job.arrival, q.seq))


class LWFPolicy(QueuePolicy):
    """Least work first: smallest ``estimate × width`` goes first."""

    name = "LWF"

    def order(self, queue, now):
        """Ascending requested work (estimate × width)."""
        return sorted(queue,
                      key=lambda q: (q.job.estimate * q.job.width,
                                     q.job.arrival, q.seq))


class EasyBackfillPolicy(FCFSPolicy):
    """FCFS with EASY (aggressive) backfilling."""

    name = "EASY"
    backfill = "easy"


class ConservativeBackfillPolicy(FCFSPolicy):
    """FCFS with conservative backfilling (all jobs hold reservations)."""

    name = "CONS"
    backfill = "conservative"


class AgedPriorityPolicy(QueuePolicy):
    """Priority order with linear aging (an LWF/FCFS compromise).

    Jobs carry external priorities (lower value = more urgent, default
    0); a job's effective priority improves by ``aging_rate`` per slot
    spent waiting, so large or low-priority jobs cannot starve — the
    fairness repair the Section 5 discussion of LWF starvation calls
    for.
    """

    name = "AGED"

    def __init__(self, priorities: dict[str, float] | None = None,
                 aging_rate: float = 0.1):
        if aging_rate < 0:
            raise ValueError(
                f"aging_rate must be non-negative, got {aging_rate}")
        self.priorities = dict(priorities or {})
        self.aging_rate = aging_rate

    def effective_priority(self, queued: "QueuedJob", now: int) -> float:
        """Base priority minus the waiting-time credit."""
        base = self.priorities.get(queued.job.job_id, 0.0)
        return base - self.aging_rate * max(0, now - queued.job.arrival)

    def order(self, queue, now):
        """Ascending effective (aged) priority."""
        return sorted(queue,
                      key=lambda q: (self.effective_priority(q, now),
                                     q.job.arrival, q.seq))


class GangPolicy(QueuePolicy):
    """Simplified gang scheduling: a gang's members start together.

    Jobs carry a gang tag in ``job_id`` as ``"gang:<tag>:<member>"``;
    untagged jobs behave as singleton gangs.  The queue is FCFS over
    gangs, and a gang is only eligible once all ``expected_sizes[tag]``
    members have arrived — the batch system then starts them back to
    back.
    """

    name = "GANG"

    def __init__(self, expected_sizes: dict[str, int] | None = None):
        #: Members each gang must assemble before any of them may start.
        self.expected_sizes = dict(expected_sizes or {})

    @staticmethod
    def gang_tag(job_id: str) -> str:
        """The gang a job belongs to (its own id when untagged)."""
        if job_id.startswith("gang:"):
            parts = job_id.split(":", 2)
            if len(parts) == 3:
                return parts[1]
        return job_id

    def order(self, queue, now):
        """FCFS over gangs, members kept adjacent."""
        tags: dict[str, list] = {}
        for queued in queue:
            tags.setdefault(self.gang_tag(queued.job.job_id), []).append(queued)
        # Gangs ordered by their earliest member arrival; members FCFS.
        ordered = []
        for tag in sorted(tags, key=lambda t: min(
                (q.job.arrival, q.seq) for q in tags[t])):
            ordered.extend(sorted(tags[tag],
                                  key=lambda q: (q.job.arrival, q.seq)))
        return ordered
