"""A small resource-query language (the JDL / ClassAds analogue).

Section 1 surveys resource-query languages — JDL's alternatives and
preferences, Condor-G's ClassAds — as the way resource requests
describe what a task needs.  This module provides a compact expression
language over node attributes with the same flavour:

* **requirements** — a boolean expression a node must satisfy,
  e.g. ``performance >= 0.5 && domain != 'slowland'``;
* **rank** — a numeric expression ordering the admissible nodes,
  e.g. ``performance * 2 - price_rate`` (higher is better).

Grammar (classic recursive descent)::

    expr        := or_expr
    or_expr     := and_expr ( '||' and_expr )*
    and_expr    := not_expr ( '&&' not_expr )*
    not_expr    := '!' not_expr | comparison
    comparison  := sum ( ('=='|'!='|'<='|'>='|'<'|'>') sum )?
    sum         := term ( ('+'|'-') term )*
    term        := unary ( ('*'|'/') unary )*
    unary       := '-' unary | atom
    atom        := NUMBER | STRING | IDENT | '(' expr ')'

Node attributes available to identifiers: ``node_id``, ``performance``,
``type_index``, ``domain``, ``group`` (``"fast"``/``"medium"``/
``"slow"``), ``price_rate``, plus the boolean literals ``true`` and
``false``.  Unknown identifiers raise :class:`QueryError` at
evaluation time, so typos fail loudly rather than silently matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from ..core.resources import ProcessorNode, ResourcePool

__all__ = ["QueryError", "Token", "tokenize", "parse", "unparse",
           "ResourceQuery"]


class QueryError(ValueError):
    """Lexing, parsing, or evaluation failure of a query expression."""


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

#: Multi-character operators, longest first so '<=' wins over '<'.
_OPERATORS = ("&&", "||", "==", "!=", "<=", ">=",
              "<", ">", "!", "+", "-", "*", "/", "(", ")")


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (for error messages)."""

    kind: str          # "number" | "string" | "ident" | "op" | "end"
    text: str
    position: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})@{self.position}"


def tokenize(text: str) -> list[Token]:
    """Split a query into tokens; raises QueryError on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length
                              and text[index + 1].isdigit()):
            start = index
            seen_dot = False
            while index < length and (text[index].isdigit()
                                      or (text[index] == "."
                                          and not seen_dot)):
                seen_dot = seen_dot or text[index] == "."
                index += 1
            tokens.append(Token("number", text[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum()
                                      or text[index] == "_"):
                index += 1
            tokens.append(Token("ident", text[start:index], start))
            continue
        if char in ("'", '"'):
            quote = char
            start = index
            index += 1
            while index < length and text[index] != quote:
                index += 1
            if index >= length:
                raise QueryError(
                    f"unterminated string starting at column {start}")
            tokens.append(Token("string", text[start + 1:index], start))
            index += 1
            continue
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                tokens.append(Token("op", operator, index))
                index += len(operator)
                break
        else:
            raise QueryError(
                f"unexpected character {char!r} at column {index}")
    tokens.append(Token("end", "", length))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A number, string, or boolean constant."""

    value: Any

    def evaluate(self, context: dict[str, Any]) -> Any:
        """Constants evaluate to themselves."""
        return self.value


@dataclass(frozen=True)
class Attribute:
    """A node attribute reference."""

    name: str

    def evaluate(self, context: dict[str, Any]) -> Any:
        """Look the attribute up in the node context."""
        try:
            return context[self.name]
        except KeyError:
            raise QueryError(
                f"unknown attribute {self.name!r}; available: "
                f"{', '.join(sorted(context))}") from None


@dataclass(frozen=True)
class Unary:
    """``!expr`` or ``-expr``."""

    operator: str
    operand: Any

    def evaluate(self, context: dict[str, Any]) -> Any:
        """Apply logical negation or numeric minus."""
        value = self.operand.evaluate(context)
        if self.operator == "!":
            return not _truthy(value)
        return -_numeric(value, "unary -")


@dataclass(frozen=True)
class Binary:
    """Any two-operand operation."""

    operator: str
    left: Any
    right: Any

    def evaluate(self, context: dict[str, Any]) -> Any:
        """Apply the operator with short-circuit && and ||."""
        operator = self.operator
        if operator == "&&":
            return (_truthy(self.left.evaluate(context))
                    and _truthy(self.right.evaluate(context)))
        if operator == "||":
            return (_truthy(self.left.evaluate(context))
                    or _truthy(self.right.evaluate(context)))
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if operator == "==":
            return left == right
        if operator == "!=":
            return left != right
        if operator in ("<", "<=", ">", ">="):
            _comparable(left, right, operator)
            if operator == "<":
                return left < right
            if operator == "<=":
                return left <= right
            if operator == ">":
                return left > right
            return left >= right
        numeric_left = _numeric(left, operator)
        numeric_right = _numeric(right, operator)
        if operator == "+":
            return numeric_left + numeric_right
        if operator == "-":
            return numeric_left - numeric_right
        if operator == "*":
            return numeric_left * numeric_right
        if operator == "/":
            if numeric_right == 0:
                raise QueryError("division by zero in rank expression")
            return numeric_left / numeric_right
        raise QueryError(f"unknown operator {operator!r}")  # pragma: no cover


Expr = Union[Literal, Attribute, Unary, Binary]


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise QueryError(
        f"expected a boolean, got {value!r} — comparisons are required "
        f"(write 'performance > 0' rather than bare attributes)")


def _numeric(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"{where} needs a number, got {value!r}")
    return value


def _comparable(left: Any, right: Any, operator: str) -> None:
    both_numbers = (isinstance(left, (int, float))
                    and not isinstance(left, bool)
                    and isinstance(right, (int, float))
                    and not isinstance(right, bool))
    both_strings = isinstance(left, str) and isinstance(right, str)
    if not (both_numbers or both_strings):
        raise QueryError(
            f"cannot compare {left!r} {operator} {right!r}")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        """The token under the cursor."""
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def _expect_op(self, text: str) -> None:
        if self.current.kind != "op" or self.current.text != text:
            raise QueryError(
                f"expected {text!r} at column {self.current.position}, "
                f"got {self.current.text!r}")
        self._advance()

    def _match_op(self, *texts: str) -> Optional[str]:
        if self.current.kind == "op" and self.current.text in texts:
            return self._advance().text
        return None

    def parse(self) -> Expr:
        """Parse the whole token stream as one expression."""
        expression = self._or_expr()
        if self.current.kind != "end":
            raise QueryError(
                f"trailing input at column {self.current.position}: "
                f"{self.current.text!r}")
        return expression

    def _or_expr(self) -> Expr:
        node = self._and_expr()
        while self._match_op("||"):
            node = Binary("||", node, self._and_expr())
        return node

    def _and_expr(self) -> Expr:
        node = self._not_expr()
        while self._match_op("&&"):
            node = Binary("&&", node, self._not_expr())
        return node

    def _not_expr(self) -> Expr:
        if self._match_op("!"):
            return Unary("!", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        node = self._sum()
        operator = self._match_op("==", "!=", "<=", ">=", "<", ">")
        if operator:
            node = Binary(operator, node, self._sum())
        return node

    def _sum(self) -> Expr:
        node = self._term()
        while True:
            operator = self._match_op("+", "-")
            if not operator:
                return node
            node = Binary(operator, node, self._term())

    def _term(self) -> Expr:
        node = self._unary()
        while True:
            operator = self._match_op("*", "/")
            if not operator:
                return node
            node = Binary(operator, node, self._unary())

    def _unary(self) -> Expr:
        if self._match_op("-"):
            return Unary("-", self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self._advance()
            value = float(token.text)
            return Literal(int(value) if value.is_integer() else value)
        if token.kind == "string":
            self._advance()
            return Literal(token.text)
        if token.kind == "ident":
            self._advance()
            if token.text == "true":
                return Literal(True)
            if token.text == "false":
                return Literal(False)
            return Attribute(token.text)
        if token.kind == "op" and token.text == "(":
            self._advance()
            node = self._or_expr()
            self._expect_op(")")
            return node
        raise QueryError(
            f"unexpected {token.text or 'end of input'!r} at column "
            f"{token.position}")


def parse(text: str) -> Expr:
    """Parse a query expression into its AST."""
    if not text.strip():
        raise QueryError("empty query")
    return _Parser(tokenize(text)).parse()


def unparse(expression: Expr) -> str:
    """Render an AST back to source; ``parse(unparse(e)) == e``.

    Conservatively parenthesizes every compound sub-expression, so the
    output is unambiguous regardless of precedence.
    """
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return f"'{value}'"
        return repr(value)
    if isinstance(expression, Attribute):
        return expression.name
    if isinstance(expression, Unary):
        return f"{expression.operator}({unparse(expression.operand)})"
    if isinstance(expression, Binary):
        return (f"({unparse(expression.left)} {expression.operator} "
                f"{unparse(expression.right)})")
    raise QueryError(f"cannot unparse {expression!r}")


# ----------------------------------------------------------------------
# Query object
# ----------------------------------------------------------------------

def _node_context(node: ProcessorNode) -> dict[str, Any]:
    return {
        "node_id": node.node_id,
        "performance": node.performance,
        "type_index": node.type_index,
        "domain": node.domain,
        "group": node.group.value,
        "price_rate": node.price_rate,
    }


class ResourceQuery:
    """Compiled requirements + rank over processor nodes.

    >>> from repro.core.resources import ProcessorNode, ResourcePool
    >>> pool = ResourcePool([ProcessorNode(node_id=1, performance=0.9),
    ...                      ProcessorNode(node_id=2, performance=0.4)])
    >>> query = ResourceQuery("performance >= 0.5", rank="performance")
    >>> [node.node_id for node in query.select(pool)]
    [1]
    """

    def __init__(self, requirements: str, rank: Optional[str] = None):
        self.requirements_text = requirements
        self.rank_text = rank
        self._requirements = parse(requirements)
        self._rank = parse(rank) if rank else None

    def matches(self, node: ProcessorNode) -> bool:
        """True when the node satisfies the requirements."""
        result = self._requirements.evaluate(_node_context(node))
        if not isinstance(result, bool):
            raise QueryError(
                f"requirements must be boolean, got {result!r} — "
                f"did you mean a comparison?")
        return result

    def rank_of(self, node: ProcessorNode) -> float:
        """The node's preference score (0 when no rank was given)."""
        if self._rank is None:
            return 0.0
        value = self._rank.evaluate(_node_context(node))
        return _numeric(value, "rank")

    def select(self, pool: ResourcePool,
               count: Optional[int] = None) -> list[ProcessorNode]:
        """Admissible nodes, best rank first (ties: lowest id)."""
        admitted = [node for node in pool if self.matches(node)]
        admitted.sort(key=lambda n: (-self.rank_of(n), n.node_id))
        if count is not None:
            if count < 1:
                raise QueryError(f"count must be positive, got {count}")
            admitted = admitted[:count]
        return admitted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rank = f", rank={self.rank_text!r}" if self.rank_text else ""
        return f"<ResourceQuery {self.requirements_text!r}{rank}>"
