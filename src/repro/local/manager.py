"""The local resource manager: the bottom tier of the Fig. 1 hierarchy.

"Each task is executed on a single node and ... the local management
system interprets it as a job accompanied by a resource request."  A
:class:`LocalResourceManager` owns a group of heterogeneous nodes with
their reservation calendars and answers :class:`~repro.local.request.
ResourceRequest` queries from the job managers above it:

* a request with a ``reserved_start`` is an **advance reservation** for
  a specific window (and, optionally, a specific node);
* a request without one is granted the earliest feasible slot on the
  best admissible node (query requirements and ranks respected).

Grants are real calendar reservations; releasing a grant frees them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..core.calendar import Reservation, ReservationCalendar
from ..core.resources import ProcessorNode, ResourcePool
from .request import ResourceRequest

__all__ = ["Grant", "RequestRefused", "LocalResourceManager"]


class RequestRefused(RuntimeError):
    """No admissible node can host the request."""


@dataclass(frozen=True)
class Grant:
    """A successful allocation of one resource request."""

    request_id: str
    node_id: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Granted wall time."""
        return self.end - self.start


class LocalResourceManager:
    """Reservation service for one domain's processor nodes.

    Parameters
    ----------
    pool:
        The nodes this manager administers.
    calendars:
        Their reservation calendars; when omitted, fresh empty calendars
        are created (the manager then owns all state).
    """

    def __init__(self, pool: ResourcePool,
                 calendars: Optional[Mapping[int, ReservationCalendar]]
                 = None):
        if len(pool) == 0:
            raise ValueError("a local manager needs at least one node")
        self.pool = pool
        if calendars is None:
            calendars = {node.node_id: ReservationCalendar()
                         for node in pool}
        missing = [node.node_id for node in pool
                   if node.node_id not in calendars]
        if missing:
            raise ValueError(f"no calendars for nodes {missing}")
        self.calendars = dict(calendars)
        self._grants: dict[str, tuple[Grant, Reservation]] = {}

    # ------------------------------------------------------------------

    def admissible_nodes(self, request: ResourceRequest
                         ) -> list[ProcessorNode]:
        """Nodes satisfying the request's constraints, best first.

        "Best" prefers *cheaper* (slower) nodes, matching the VO's
        economics: the job manager asks for more performance explicitly
        (via ``min_performance`` or a query) when it needs it.
        """
        nodes = [node for node in self.pool if request.admits(node)]
        nodes.sort(key=lambda n: (n.price_rate, n.node_id))
        return nodes

    def handle(self, request: ResourceRequest) -> Grant:
        """Grant the request or raise :class:`RequestRefused`.

        Width > 1 is not supported here — compound-job tasks are width
        1 by construction; wider independent jobs belong to
        :class:`~repro.local.batch.LocalBatchSystem`.
        """
        if request.request_id in self._grants:
            raise ValueError(
                f"request {request.request_id!r} already granted")
        if request.width != 1:
            raise RequestRefused(
                f"local managers host single-node tasks; width "
                f"{request.width} belongs in a batch queue")

        candidates = self.admissible_nodes(request)
        required = request.attributes.get("node_id")
        if required is not None:
            # A request derived from a supporting schedule binds to its
            # planned node: the distribution's transfer lags assume it.
            candidates = [node for node in candidates
                          if node.node_id == required]
        if not candidates:
            raise RequestRefused(
                f"no node satisfies {request.request_id!r}")

        for node in candidates:
            calendar = self.calendars[node.node_id]
            if request.reserved_start is not None:
                start = request.reserved_start
                end = start + request.wall_time
                if (request.deadline is not None
                        and end > request.deadline):
                    continue
                if not calendar.is_free(start, end):
                    continue
            else:
                start = calendar.earliest_fit(
                    request.wall_time,
                    earliest=request.earliest_start,
                    deadline=request.deadline)
                if start is None:
                    continue
                end = start + request.wall_time
            reservation = calendar.reserve(start, end,
                                           tag=request.request_id)
            grant = Grant(request_id=request.request_id,
                          node_id=node.node_id, start=start, end=end)
            self._grants[request.request_id] = (grant, reservation)
            return grant
        raise RequestRefused(
            f"no admissible node has a free window for "
            f"{request.request_id!r}")

    def handle_all(self, requests: Iterable[ResourceRequest]
                   ) -> list[Grant]:
        """Grant a batch atomically: all succeed or none are kept."""
        granted: list[Grant] = []
        try:
            for request in requests:
                granted.append(self.handle(request))
        except RequestRefused:
            for grant in granted:
                self.release(grant.request_id)
            raise
        return granted

    def release(self, request_id: str) -> None:
        """Free a previous grant's reservation."""
        try:
            grant, reservation = self._grants.pop(request_id)
        except KeyError:
            raise KeyError(f"no grant for {request_id!r}") from None
        self.calendars[grant.node_id].release(reservation)

    def grant_of(self, request_id: str) -> Optional[Grant]:
        """The current grant for a request, if any."""
        entry = self._grants.get(request_id)
        return entry[0] if entry else None

    def utilization(self, start: int, end: int) -> float:
        """Mean calendar utilization across this manager's nodes."""
        values = [self.calendars[node.node_id].utilization(start, end)
                  for node in self.pool]
        return sum(values) / len(values)
