"""A local batch-job management system simulator.

Simulates one cluster queue with pluggable policies (FCFS, LWF, EASY /
conservative backfilling, gang) and advance reservations.  The scheduler
plans with *user estimates* (wall-time requests) while jobs complete at
their *actual* runtimes — the gap drives the start-forecast errors and
waiting-time effects discussed in the paper's Section 5.

The simulation is event-driven over integer slots: events are job
arrivals and job completions; after each event the scheduler tries to
dispatch from the queue according to its policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..workload.traces import BatchJob
from .policies import FCFSPolicy, GangPolicy, QueuePolicy
from .profile import AvailabilityProfile

__all__ = ["QueuedJob", "JobRecord", "AdvanceReservation",
           "LocalBatchSystem"]


@dataclass
class QueuedJob:
    """A job waiting in the local queue."""

    job: BatchJob
    #: Submission sequence number (FCFS tie-break).
    seq: int
    #: Start-time forecast computed when the job arrived.
    forecast: Optional[int] = None


@dataclass(frozen=True)
class JobRecord:
    """Final accounting for one completed job."""

    job_id: str
    arrival: int
    start: int
    end: int
    width: int
    runtime: int
    estimate: int
    forecast: Optional[int] = None
    reserved: bool = False

    @property
    def wait(self) -> int:
        """Queue waiting time."""
        return self.start - self.arrival

    @property
    def forecast_error(self) -> Optional[int]:
        """Absolute start-forecast error (None when no forecast)."""
        if self.forecast is None:
            return None
        return abs(self.start - self.forecast)


@dataclass(frozen=True)
class AdvanceReservation:
    """A fixed future slot granted before the job enters the queue."""

    job_id: str
    start: int
    width: int
    duration: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.width < 1 or self.duration < 1:
            raise ValueError("width and duration must be positive")


@dataclass
class _Running:
    job: BatchJob
    start: int
    actual_end: int
    estimated_end: int
    reserved: bool = False


class LocalBatchSystem:
    """One cluster queue with a scheduling policy.

    Parameters
    ----------
    capacity:
        Number of identical nodes in the cluster.
    policy:
        Queue policy (default FCFS, as in the paper's experiments).
    """

    def __init__(self, capacity: int, policy: Optional[QueuePolicy] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.policy = policy or FCFSPolicy()
        self._pending: list[BatchJob] = []
        self._reservations: dict[str, AdvanceReservation] = {}
        self._records: list[JobRecord] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: BatchJob) -> None:
        """Enqueue a job for arrival at its trace arrival time."""
        if job.width > self.capacity:
            raise ValueError(
                f"job {job.job_id!r} needs {job.width} nodes, cluster has "
                f"{self.capacity}")
        self._pending.append(job)

    def submit_many(self, jobs: Iterable[BatchJob]) -> None:
        """Enqueue a whole trace."""
        for job in jobs:
            self.submit(job)

    def reserve(self, job: BatchJob, start: int) -> AdvanceReservation:
        """Grant the job an advance reservation at or after ``start``.

        The granted slot is the earliest one at or after the requested
        start that does not oversubscribe the cluster together with the
        already-granted reservations (a negotiated reservation, as real
        resource managers do).
        """
        if start < job.arrival:
            raise ValueError(
                f"reservation at {start} precedes arrival {job.arrival}")
        profile = AvailabilityProfile(self.capacity)
        for existing in self._reservations.values():
            profile.add(existing.start, existing.duration, existing.width)
        granted = profile.earliest_start(job.estimate, job.width,
                                         from_=start)
        reservation = AdvanceReservation(job.job_id, granted, job.width,
                                         job.estimate)
        self._reservations[job.job_id] = reservation
        return reservation

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(self) -> list[JobRecord]:
        """Simulate until every submitted job completes."""
        pending = sorted(self._pending, key=lambda j: j.arrival)
        queue: list[QueuedJob] = []
        running: list[_Running] = []
        arrived_gang_members: dict[str, int] = {}
        started: set[str] = set()
        now = 0

        def next_event() -> Optional[int]:
            times = []
            if pending:
                times.append(pending[0].arrival)
            if running:
                times.append(min(r.actual_end for r in running))
            # A reserved job may start with no other event pending.
            for queued in queue:
                reservation = self._reservations.get(queued.job.job_id)
                if reservation is not None:
                    times.append(max(reservation.start, queued.job.arrival))
            return min(times) if times else None

        def used_nodes(at: int) -> int:
            return sum(r.job.width for r in running if r.actual_end > at)

        def estimate_profile(at: int) -> AvailabilityProfile:
            """Profile from running-job estimates and reservations."""
            profile = AvailabilityProfile(self.capacity)
            for run in running:
                if run.actual_end <= at:
                    continue
                # The scheduler only knows the estimate; a job never runs
                # past it (overruns are killed at the wall time).
                end = max(run.estimated_end, at + 1)
                profile.add(at, end - at, run.job.width)
            for reservation in self._reservations.values():
                if reservation.job_id in started:
                    continue  # already counted through `running`
                end = reservation.start + reservation.duration
                if end <= at:
                    continue
                profile.add(max(reservation.start, at),
                            end - max(reservation.start, at),
                            reservation.width)
            return profile

        def start_job(queued: QueuedJob, at: int, reserved: bool) -> None:
            job = queued.job
            started.add(job.job_id)
            running.append(_Running(
                job=job, start=at, actual_end=at + job.runtime,
                estimated_end=at + job.estimate, reserved=reserved))
            queue.remove(queued)
            self._records.append(JobRecord(
                job_id=job.job_id, arrival=job.arrival, start=at,
                end=at + job.runtime, width=job.width, runtime=job.runtime,
                estimate=job.estimate, forecast=queued.forecast,
                reserved=reserved))

        def eligible(queued: QueuedJob) -> bool:
            if not isinstance(self.policy, GangPolicy):
                return True
            tag = GangPolicy.gang_tag(queued.job.job_id)
            expected = self.policy.expected_sizes.get(tag, 1)
            return arrived_gang_members.get(tag, 0) >= expected

        def dispatch(at: int) -> None:
            # Reserved jobs start exactly at their reserved slot.
            for queued in list(queue):
                reservation = self._reservations.get(queued.job.job_id)
                if reservation is not None and reservation.start <= at:
                    start_job(queued, at, reserved=True)

            changed = True
            while changed:
                changed = False
                unreserved = [q for q in queue
                              if q.job.job_id not in self._reservations]
                ordered = self.policy.order(unreserved, at)
                profile = estimate_profile(at)
                blocked_head = False
                for queued in ordered:
                    job = queued.job
                    if not eligible(queued):
                        if self.policy.backfill == "none":
                            break
                        continue
                    fits_now = (profile.earliest_start(
                        job.estimate, job.width, at) == at)
                    if fits_now:
                        start_job(queued, at, reserved=False)
                        changed = True
                        break  # restart with a fresh profile
                    if self.policy.backfill == "none":
                        break  # head-of-queue blocking
                    if self.policy.backfill == "easy" and not blocked_head:
                        # Reserve the head's shadow slot, then backfill.
                        shadow = profile.earliest_start(
                            job.estimate, job.width, at)
                        profile.add(shadow, job.estimate, job.width)
                        blocked_head = True
                        continue
                    if self.policy.backfill == "conservative":
                        shadow = profile.earliest_start(
                            job.estimate, job.width, at)
                        profile.add(shadow, job.estimate, job.width)
                        continue
                    # EASY: jobs behind the blocked head may only start
                    # now; otherwise they are skipped (no reservation).

        def forecast_for(queued_new: QueuedJob, at: int) -> int:
            """Start forecast at submission: conservative projection of
            the jobs the policy would serve ahead of the new one."""
            profile = estimate_profile(at)
            candidates = [q for q in queue
                          if q.job.job_id not in self._reservations]
            ordered = self.policy.order(candidates + [queued_new], at)
            for queued in ordered:
                if queued is queued_new:
                    break
                slot = profile.earliest_start(queued.job.estimate,
                                              queued.job.width, at)
                profile.add(slot, queued.job.estimate, queued.job.width)
            return profile.earliest_start(queued_new.job.estimate,
                                          queued_new.job.width, at)

        while pending or queue or running:
            event_time = next_event()
            if event_time is None:
                raise RuntimeError(
                    f"queue stalled at t={now} with {len(queue)} jobs "
                    f"waiting — no arrival, completion, or reservation due")
            now = max(now, event_time)
            running = [r for r in running if r.actual_end > now]
            while pending and pending[0].arrival <= now:
                job = pending.pop(0)
                queued = QueuedJob(job=job, seq=self._seq)
                self._seq += 1
                tag = GangPolicy.gang_tag(job.job_id)
                arrived_gang_members[tag] = arrived_gang_members.get(tag, 0) + 1
                if job.job_id not in self._reservations:
                    queued.forecast = forecast_for(queued, now)
                queue.append(queued)
            dispatch(now)

        self._pending = []
        return sorted(self._records, key=lambda r: (r.start, r.job_id))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def records(self) -> list[JobRecord]:
        """Records of completed jobs so far."""
        return list(self._records)

    @staticmethod
    def mean_wait(records: Iterable[JobRecord],
                  include_reserved: bool = False) -> float:
        """Average queue waiting time."""
        waits = [r.wait for r in records
                 if include_reserved or not r.reserved]
        return sum(waits) / len(waits) if waits else 0.0

    @staticmethod
    def mean_forecast_error(records: Iterable[JobRecord]) -> float:
        """Average absolute start-forecast error."""
        errors = [r.forecast_error for r in records
                  if r.forecast_error is not None]
        return sum(errors) / len(errors) if errors else 0.0
