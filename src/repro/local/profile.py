"""Node-availability profiles for backfilling and reservations.

A local batch system owns a homogeneous cluster of ``capacity`` nodes.
The profile is a step function *free(t)* describing how many nodes are
free at each future instant, given the (estimated) ends of running jobs
and the reservations already granted.  Both backfilling variants and
advance reservations are built on two queries:

* :meth:`AvailabilityProfile.earliest_start` — first time ``t ≥ from_``
  where at least ``width`` nodes stay free for ``duration`` slots;
* :meth:`AvailabilityProfile.add` — subtract ``width`` nodes over
  ``[start, start + duration)`` (granting a job or a reservation).
"""

from __future__ import annotations

import bisect

__all__ = ["AvailabilityProfile"]

#: Sentinel horizon: far enough that every query resolves before it.
_FAR = 10**12


class AvailabilityProfile:
    """Step function of free node counts over future time."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        # Sorted breakpoints: free count from times[i] until times[i+1].
        self._times: list[int] = [0]
        self._free: list[int] = [capacity]

    def free_at(self, time: int) -> int:
        """Free nodes at ``time`` (before any change scheduled there)."""
        index = self._locate(time)
        return self._free[index]

    def _locate(self, time: int) -> int:
        """Index of the segment containing ``time``."""
        return bisect.bisect_right(self._times, time) - 1

    def _ensure_breakpoint(self, time: int) -> int:
        """Split the segment at ``time``; return its index."""
        index = self._locate(time)
        if self._times[index] == time:
            return index
        self._times.insert(index + 1, time)
        self._free.insert(index + 1, self._free[index])
        return index + 1

    def add(self, start: int, duration: int, width: int) -> None:
        """Occupy ``width`` nodes over ``[start, start + duration)``."""
        if duration < 1:
            raise ValueError(f"duration must be positive, got {duration}")
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        first = self._ensure_breakpoint(start)
        last = self._ensure_breakpoint(start + duration)
        for index in range(first, last):
            if self._free[index] < width:
                raise ValueError(
                    f"profile underflow at t={self._times[index]}: "
                    f"{self._free[index]} free < width {width}")
            self._free[index] -= width
        self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent segments with equal free counts."""
        times, free = [self._times[0]], [self._free[0]]
        for t, f in zip(self._times[1:], self._free[1:]):
            if f == free[-1]:
                continue
            times.append(t)
            free.append(f)
        self._times, self._free = times, free

    def earliest_start(self, duration: int, width: int,
                       from_: int = 0) -> int:
        """Earliest slot ≥ ``from_`` with ``width`` nodes free for
        ``duration`` consecutive slots."""
        if duration < 1:
            raise ValueError(f"duration must be positive, got {duration}")
        if not 1 <= width <= self.capacity:
            raise ValueError(
                f"width must lie in [1, {self.capacity}], got {width}")
        candidate = max(from_, 0)
        index = self._locate(candidate)
        while True:
            # Scan forward from `candidate` checking the window fits.
            end_needed = candidate + duration
            scan = index
            ok = True
            while scan < len(self._times):
                segment_start = max(self._times[scan], candidate)
                if segment_start >= end_needed:
                    break
                if self._free[scan] < width:
                    ok = False
                    # Restart after this congested segment.
                    if scan + 1 < len(self._times):
                        candidate = self._times[scan + 1]
                        index = scan + 1
                    else:  # pragma: no cover - defensive; last segment is
                        return _FAR  # infinitely long and full
                    break
                scan += 1
            if ok:
                return candidate

    def snapshot(self) -> list[tuple[int, int]]:
        """The (time, free) breakpoints — for tests and debugging."""
        return list(zip(self._times, self._free))

    def copy(self) -> "AvailabilityProfile":
        """An independent copy."""
        clone = AvailabilityProfile(self.capacity)
        clone._times = list(self._times)
        clone._free = list(self._free)
        return clone
