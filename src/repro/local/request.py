"""Resource requests: what the upper scheduling layers send down.

"Each task is executed on a single node and ... the local management
system interprets it as a job accompanied by a resource request."
(Section 1.)  A :class:`ResourceRequest` is that accompanying query,
playing the role JDL / ClassAds expressions play in the systems the
paper surveys: node count, wall time, an optional fixed reservation
window, and optional attribute constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.resources import ProcessorNode
from ..core.schedule import Placement
from ..workload.traces import BatchJob

__all__ = ["ResourceRequest"]


@dataclass(frozen=True)
class ResourceRequest:
    """A node/wall-time query for one task (or one independent job)."""

    request_id: str
    #: Nodes needed simultaneously (compound-job tasks use 1).
    width: int = 1
    #: Requested wall time (the reservation length).
    wall_time: int = 1
    #: Earliest acceptable start.
    earliest_start: int = 0
    #: Optional fixed start (an advance reservation at this exact slot).
    reserved_start: Optional[int] = None
    #: Latest acceptable completion (None: unconstrained).
    deadline: Optional[int] = None
    #: Minimal relative node performance (None: any node).
    min_performance: Optional[float] = None
    #: Optional requirements expression in the resource-query language
    #: (see :mod:`repro.local.query`), e.g. ``"group != 'slow'"``.
    requirements: Optional[str] = None
    owner: str = "anonymous"
    #: Free-form attributes (job id, task id, strategy type, ...).
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be positive, got {self.width}")
        if self.wall_time < 1:
            raise ValueError(
                f"wall_time must be positive, got {self.wall_time}")
        if self.earliest_start < 0:
            raise ValueError(
                f"earliest_start must be non-negative, got "
                f"{self.earliest_start}")
        if (self.reserved_start is not None
                and self.reserved_start < self.earliest_start):
            raise ValueError(
                f"reserved_start {self.reserved_start} precedes "
                f"earliest_start {self.earliest_start}")
        if self.deadline is not None:
            finish_floor = (self.reserved_start
                            if self.reserved_start is not None
                            else self.earliest_start) + self.wall_time
            if self.deadline < finish_floor:
                raise ValueError(
                    f"deadline {self.deadline} cannot be met: earliest "
                    f"finish is {finish_floor}")
        if self.min_performance is not None and not (
                0 < self.min_performance <= 1):
            raise ValueError(
                f"min_performance must lie in (0, 1], got "
                f"{self.min_performance}")
        if self.requirements is not None:
            # Compile eagerly so malformed queries fail at build time.
            from .query import ResourceQuery

            object.__setattr__(self, "_query",
                               ResourceQuery(self.requirements))
        else:
            object.__setattr__(self, "_query", None)

    @classmethod
    def from_placement(cls, job_id: str, placement: Placement,
                       owner: str = "anonymous") -> "ResourceRequest":
        """The request a metascheduler derives from a supporting schedule:
        a width-1 advance reservation at the planned wall-time window."""
        return cls(
            request_id=f"{job_id}:{placement.task_id}",
            width=1,
            wall_time=placement.duration,
            earliest_start=placement.start,
            reserved_start=placement.start,
            owner=owner,
            attributes={"job_id": job_id, "task_id": placement.task_id,
                        "node_id": placement.node_id},
        )

    def admits(self, node: ProcessorNode) -> bool:
        """True if the node satisfies the request's constraints."""
        if (self.min_performance is not None
                and node.performance < self.min_performance):
            return False
        if self._query is not None and not self._query.matches(node):
            return False
        return True

    def to_batch_job(self, arrival: Optional[int] = None,
                     runtime: Optional[int] = None) -> BatchJob:
        """The queue-level view of this request.

        ``runtime`` is the actual runtime for simulation purposes and
        defaults to the full wall time.
        """
        actual = runtime if runtime is not None else self.wall_time
        return BatchJob(
            job_id=self.request_id,
            arrival=arrival if arrival is not None else self.earliest_start,
            width=self.width,
            runtime=actual,
            estimate=self.wall_time,
        )
