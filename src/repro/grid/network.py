"""Network model: where transfer base times come from.

Transfer base times on job edges are derived from data volumes and the
interconnect: ``base_time = latency + ceil(volume / bandwidth)``.  The
workload generator uses this to turn randomized data volumes (Section 4:
"randomized ... data transfer times and volumes") into slot counts; the
data-policy models in :mod:`repro.grid.data` then scale those base times
per strategy family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.units import ceil_units

__all__ = ["Link", "Network"]


@dataclass(frozen=True)
class Link:
    """A point-to-point connection between two domains (or nodes)."""

    bandwidth: float
    latency: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(
                f"latency must be non-negative, got {self.latency}")

    def transfer_slots(self, volume: float) -> int:
        """Slots to move ``volume`` data units over this link."""
        if volume < 0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        if volume == 0:
            return self.latency
        return self.latency + max(1, ceil_units(volume / self.bandwidth))


class Network:
    """Domain-to-domain connectivity with a default link.

    The hierarchical framework groups similar nodes under one domain
    manager; traffic inside a domain uses the (fast) default intra-domain
    link, traffic between domains the inter-domain default or an
    explicitly registered link.
    """

    def __init__(self, intra_domain: Optional[Link] = None,
                 inter_domain: Optional[Link] = None):
        self.intra_domain = intra_domain or Link(bandwidth=10.0, latency=0)
        self.inter_domain = inter_domain or Link(bandwidth=2.0, latency=1)
        self._links: dict[frozenset[str], Link] = {}

    def connect(self, domain_a: str, domain_b: str, link: Link) -> None:
        """Register a dedicated link between two domains."""
        if domain_a == domain_b:
            raise ValueError("use intra_domain for same-domain traffic")
        self._links[frozenset((domain_a, domain_b))] = link

    def link_between(self, domain_a: str, domain_b: str) -> Link:
        """The link used for traffic between two domains."""
        if domain_a == domain_b:
            return self.intra_domain
        return self._links.get(frozenset((domain_a, domain_b)),
                               self.inter_domain)

    def transfer_slots(self, volume: float, domain_a: str,
                       domain_b: str) -> int:
        """Slots to move ``volume`` between the two domains."""
        return self.link_between(domain_a, domain_b).transfer_slots(volume)
