"""Grid environment substrate.

Models the distributed environment underneath the scheduling framework:
data-policy transfer timings, the interconnect, per-node reservation
state with background load, deterministic execution replay, and DES
node agents.
"""

from .data import (
    RemoteAccessModel,
    ReplicationModel,
    StaticStorageModel,
    default_policy_models,
)
from .environment import BackgroundEvent, GridEnvironment
from .execution import ExecutionTrace, TaskRun, simulate_execution
from .network import Link, Network
from .node import CompletedRun, NodeAgent

__all__ = [
    "ReplicationModel",
    "RemoteAccessModel",
    "StaticStorageModel",
    "default_policy_models",
    "GridEnvironment",
    "BackgroundEvent",
    "ExecutionTrace",
    "TaskRun",
    "simulate_execution",
    "Link",
    "Network",
    "CompletedRun",
    "NodeAgent",
]
