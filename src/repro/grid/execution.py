"""Deterministic replay of a distribution with *actual* task durations.

A supporting schedule reserves wall time from user estimations; reality
then differs ("actual solving time Ti for a task can be different from
user estimation Tij").  This module replays a distribution against
actual durations, propagating delays through the job's precedence
structure, and reports the start-time forecast errors and run times
behind the Fig. 4b/4c factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution
from ..core.transfers import NeutralTransferModel, TransferModel

__all__ = ["TaskRun", "ExecutionTrace", "simulate_execution"]


@dataclass(frozen=True)
class TaskRun:
    """Actual timing of one task during replay."""

    task_id: str
    node_id: int
    planned_start: int
    planned_end: int
    actual_start: int
    actual_end: int

    @property
    def start_deviation(self) -> int:
        """How late the task started versus the supporting schedule."""
        return self.actual_start - self.planned_start

    @property
    def actual_duration(self) -> int:
        """How long the task really ran."""
        return self.actual_end - self.actual_start


@dataclass
class ExecutionTrace:
    """Replay result for a whole job."""

    job_id: str
    runs: dict[str, TaskRun] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        """Actual completion time of the last task."""
        if not self.runs:
            return 0
        return max(run.actual_end for run in self.runs.values())

    @property
    def run_time(self) -> int:
        """Wall time from first actual start to last actual end."""
        if not self.runs:
            return 0
        first = min(run.actual_start for run in self.runs.values())
        return self.makespan - first

    @property
    def total_execution_time(self) -> int:
        """Sum of actual task durations (Fig. 4b's task execution time)."""
        return sum(run.actual_duration for run in self.runs.values())

    def mean_start_deviation(self) -> float:
        """Average start-time forecast error over all tasks."""
        if not self.runs:
            return 0.0
        return (sum(run.start_deviation for run in self.runs.values())
                / len(self.runs))

    def deviation_to_runtime_ratio(self) -> float:
        """The Fig. 4c factor: start deviation over job run time."""
        run_time = self.run_time
        if run_time <= 0:
            return 0.0
        return self.mean_start_deviation() / run_time

    def met_deadline(self, deadline: int, release: int = 0) -> bool:
        """True if the actual completion stayed within the fixed time."""
        return self.makespan <= release + deadline


def simulate_execution(job: Job, distribution: Distribution,
                       pool: ResourcePool,
                       actual_level: float = 0.0,
                       transfer_model: Optional[TransferModel] = None,
                       actual_durations: Optional[Mapping[str, int]] = None,
                       ) -> ExecutionTrace:
    """Replay ``distribution`` with actual durations.

    Actual durations default to each task's duration at ``actual_level``
    on its assigned node; ``actual_durations`` overrides per task.  A
    task starts at the later of its reserved start and the moment all
    its inputs are available (predecessor actual end + transfer lag).
    """
    transfer_model = transfer_model or NeutralTransferModel()
    trace = ExecutionTrace(job_id=job.job_id)

    for task_id in job.topological_order():
        placement = distribution.placement(task_id)
        node = pool.node(placement.node_id)
        if actual_durations is not None and task_id in actual_durations:
            duration = actual_durations[task_id]
            if duration <= 0:
                raise ValueError(
                    f"actual duration for {task_id!r} must be positive")
        else:
            duration = job.task(task_id).duration_on(node.performance,
                                                     actual_level)
        ready = placement.start
        for pred in job.predecessors(task_id):
            pred_run = trace.runs[pred]
            transfer = job.transfer_between(pred, task_id)
            lag = transfer_model.time(
                transfer, pool.node(pred_run.node_id), node)
            ready = max(ready, pred_run.actual_end + lag)
        trace.runs[task_id] = TaskRun(
            task_id=task_id, node_id=placement.node_id,
            planned_start=placement.start, planned_end=placement.end,
            actual_start=ready, actual_end=ready + duration)
    return trace
