"""Processor-node agents on the discrete-event simulation.

A :class:`NodeAgent` executes reserved tasks on the DES clock: a task
may not start before its wall-time reservation, runs for its *actual*
duration, and the node refuses overlapping executions (one task per
node, as in the paper's model where every task occupies a whole node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.resources import ProcessorNode
from ..sim import Environment, Resource

__all__ = ["CompletedRun", "NodeAgent"]


@dataclass(frozen=True)
class CompletedRun:
    """Record of one task execution on a node."""

    task_id: str
    node_id: int
    start: int
    end: int


class NodeAgent:
    """Couples a processor node to the simulation clock."""

    def __init__(self, sim: Environment, node: ProcessorNode):
        self.sim = sim
        self.node = node
        self._slot = Resource(sim, capacity=1)
        #: Chronological log of completed executions.
        self.completed: list[CompletedRun] = []

    @property
    def busy(self) -> bool:
        """True while a task is executing."""
        return self._slot.count > 0

    def execute(self, task_id: str, not_before: float, duration: float):
        """Spawn a process running ``task_id``; returns its handle.

        The process waits until ``not_before`` (the reservation start),
        acquires the node, runs ``duration`` clock units, and records a
        :class:`CompletedRun`.  The process value is the completed run.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self.sim.process(self._run(task_id, not_before, duration))

    def _run(self, task_id: str, not_before: float, duration: float):
        if self.sim.now < not_before:
            yield self.sim.timeout(not_before - self.sim.now)
        with self._slot.request() as claim:
            yield claim
            started = self.sim.now
            yield self.sim.timeout(duration)
            run = CompletedRun(task_id=task_id, node_id=self.node.node_id,
                               start=int(started), end=int(self.sim.now))
            self.completed.append(run)
            return run

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of elapsed (or given) time spent executing tasks."""
        window = horizon if horizon is not None else self.sim.now
        if window <= 0:
            return 0.0
        busy = sum(run.end - run.start for run in self.completed)
        return busy / window
