"""The Grid environment: node calendars, background load, commitment.

This is the shared state the job-flow level plans against: one
reservation calendar per processor node, pre-loaded with *background
load* — reservations of independent job flows outside the virtual
organization's control (Section 4 builds application-level schedules
"for available resources non-assigned to other independent jobs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.calendar import ReservationCalendar, ReservationConflict
from ..core.resources import NodeGroup, ResourcePool
from ..core.schedule import Distribution

__all__ = ["BackgroundEvent", "GridEnvironment"]


@dataclass(frozen=True)
class BackgroundEvent:
    """A background reservation arriving *after* planning (drift).

    These events invalidate supporting schedules over time and drive the
    strategy time-to-live measurements of Fig. 4c.
    """

    arrival: int
    node_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"empty or inverted interval [{self.start}, {self.end})")
        if self.arrival < 0:
            raise ValueError(
                f"arrival must be non-negative, got {self.arrival}")


class GridEnvironment:
    """Mutable resource state of the distributed environment."""

    def __init__(self, pool: ResourcePool):
        self.pool = pool
        self.calendars: dict[int, ReservationCalendar] = {
            node.node_id: ReservationCalendar() for node in pool}

    # ------------------------------------------------------------------
    # Planning interface
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[int, ReservationCalendar]:
        """Independent calendar copies for what-if scheduling."""
        return {node_id: calendar.copy()
                for node_id, calendar in self.calendars.items()}

    def epochs(self) -> dict[int, int]:
        """The pool-level epoch vector: each node's calendar version.

        Copy-on-write snapshots share versions with these calendars, so
        any result computed from a snapshot can be tagged with the
        versions it read and revalidated later in O(nodes touched) —
        a node whose version is unchanged is guaranteed byte-identical.
        """
        return {node_id: calendar.version
                for node_id, calendar in self.calendars.items()}

    def epoch_slice(self, node_ids: Sequence[int]) -> tuple[int, ...]:
        """Versions of a subset of nodes (e.g. one domain), in order."""
        return tuple(self.calendars[node_id].version for node_id in node_ids)

    def commit_distribution(self, distribution: Distribution) -> None:
        """Book every placement of a distribution (all-or-nothing)."""
        booked = []
        try:
            for placement in distribution:
                calendar = self.calendars[placement.node_id]
                reservation = calendar.reserve(
                    placement.start, placement.end,
                    tag=f"{distribution.job_id}:{placement.task_id}")
                booked.append((calendar, reservation))
        except ReservationConflict:
            for calendar, reservation in booked:
                calendar.release(reservation)
            raise

    def can_commit(self, distribution: Distribution) -> bool:
        """True if every placement's slot is currently free."""
        return all(
            self.calendars[p.node_id].is_free(p.start, p.end)
            for p in distribution)

    def release_job(self, job_id: str) -> int:
        """Drop every reservation of one job; returns the count.

        One :meth:`~repro.core.calendar.ReservationCalendar.
        release_prefix` pass per calendar — releasing a k-task job from
        an n-reservation calendar costs O(n), not O(k * n).
        """
        prefix = f"{job_id}:"
        return sum(calendar.release_prefix(prefix)
                   for calendar in self.calendars.values())

    # ------------------------------------------------------------------
    # Background load
    # ------------------------------------------------------------------

    def apply_background_load(self, rng: np.random.Generator,
                              busy_fraction: float, horizon: int,
                              max_burst: int = 6,
                              tag: str = "background") -> int:
        """Pre-occupy each node to roughly ``busy_fraction`` utilization.

        Walks each node's timeline in bursts of 1..max_burst slots,
        reserving a burst with probability ``busy_fraction`` — the
        stationary utilization then approximates the target.  Returns
        the number of reservations created.
        """
        if not 0 <= busy_fraction < 1:
            raise ValueError(
                f"busy_fraction must lie in [0, 1), got {busy_fraction}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        created = 0
        for node in self.pool:
            calendar = self.calendars[node.node_id]
            cursor = 0
            while cursor < horizon:
                burst = int(rng.integers(1, max_burst + 1))
                if rng.random() < busy_fraction:
                    end = min(cursor + burst, horizon)
                    calendar.reserve(cursor, end, tag=tag)
                    created += 1
                cursor += burst
        return created

    def sample_background_events(self, rng: np.random.Generator,
                                 rate: float, horizon: int,
                                 max_burst: int = 6,
                                 performance_weighted: bool = True
                                 ) -> list[BackgroundEvent]:
        """Drift: new background reservations arriving over ``[0, horizon)``.

        ``rate`` is the expected number of events per slot across the
        whole pool.  With ``performance_weighted`` (the default) demand
        concentrates on fast nodes — independent flows also want the
        best resources — which is what erodes tight high-performance
        schedules first.  Sorted by arrival.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        count = rng.poisson(rate * horizon)
        node_ids = [node.node_id for node in self.pool]
        if performance_weighted:
            weights = np.array([node.performance for node in self.pool])
            probabilities = weights / weights.sum()
        else:
            probabilities = None
        events: list[BackgroundEvent] = []
        for _ in range(count):
            arrival = int(rng.integers(0, horizon))
            node_id = int(rng.choice(node_ids, p=probabilities))
            burst = int(rng.integers(1, max_burst + 1))
            start = int(rng.integers(arrival, arrival + horizon))
            events.append(BackgroundEvent(arrival, node_id, start,
                                          start + burst))
        events.sort(key=lambda e: (e.arrival, e.node_id, e.start))
        return events

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def utilization_by_group(self, start: int, end: int
                             ) -> dict[NodeGroup, float]:
        """Average node load level per performance group (Fig. 4a)."""
        sums: dict[NodeGroup, list[float]] = {group: [] for group in NodeGroup}
        for node in self.pool:
            sums[node.group].append(
                self.calendars[node.node_id].utilization(start, end))
        return {
            group: (sum(values) / len(values) if values else 0.0)
            for group, values in sums.items()
        }

    def utilization_by_group_tagged(self, start: int, end: int,
                                    exclude_tag: str = "background"
                                    ) -> dict[NodeGroup, float]:
        """Load level per group counting only job reservations.

        Background reservations (tag == ``exclude_tag``) are excluded so
        the metric reflects where the *strategies* placed their tasks.
        """
        sums: dict[NodeGroup, list[float]] = {group: [] for group in NodeGroup}
        width = end - start
        if width <= 0:
            raise ValueError(f"empty window [{start}, {end})")
        for node in self.pool:
            busy = 0
            for reservation in self.calendars[node.node_id].conflicts(
                    start, end):
                if reservation.tag == exclude_tag:
                    continue
                busy += (min(reservation.end, end)
                         - max(reservation.start, start))
            sums[node.group].append(busy / width)
        return {
            group: (sum(values) / len(values) if values else 0.0)
            for group, values in sums.items()
        }
