"""Data-policy transfer models for the three strategy families.

The paper abstracts data handling into the strategies' data policies; we
model each policy as a transfer-time rule applied when a consumer task
runs on a different node than its producer (co-located tasks never pay
for data movement):

* **active replication** (S1, MS1) — replicas are pushed toward likely
  consumers ahead of time, so only part of the transfer remains on the
  critical path: ``ceil(overlap × base_time)`` with ``overlap = 0.5`` by
  default;
* **remote data access** (S2) — data is pulled on demand when the
  consumer starts, serializing the full base time before execution;
* **static data storage** (S3) — data stays at its producer/store; a
  consumer elsewhere must fetch inputs *and* register outputs back,
  costing ``round_trip × base_time`` (2.0 by default).

These factors are modelling constants of the reproduction (the original
simulator's internals are unpublished); EXPERIMENTS.md records how the
qualitative results depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.job import DataTransfer
from ..core.resources import ProcessorNode
from ..core.strategy import DataPolicyKind
from ..core.transfers import TransferModel
from ..core.units import ceil_units

__all__ = [
    "ReplicationModel",
    "RemoteAccessModel",
    "StaticStorageModel",
    "default_policy_models",
]


@dataclass(frozen=True)
class ReplicationModel:
    """Active data replication: transfers partially overlap computation."""

    #: Fraction of the base transfer time left on the critical path.
    overlap: float = 0.5

    def __post_init__(self) -> None:
        if not 0 <= self.overlap <= 1:
            raise ValueError(
                f"overlap must lie in [0, 1], got {self.overlap}")

    def time(self, transfer: DataTransfer, src_node: ProcessorNode,
             dst_node: ProcessorNode) -> int:
        """Critical-path lag: the non-overlapped remainder."""
        if src_node.node_id == dst_node.node_id:
            return 0
        return ceil_units(self.overlap * transfer.base_time)

    def estimate(self, transfer: DataTransfer) -> int:
        """Node-independent estimate for critical-work ranking."""
        return ceil_units(self.overlap * transfer.base_time)

    def uniform_lag(self, transfer: DataTransfer) -> int:
        """The node-independent cross-node lag (batch DP fast path)."""
        return ceil_units(self.overlap * transfer.base_time)


@dataclass(frozen=True)
class RemoteAccessModel:
    """Remote data access: the full pull serializes before execution."""

    def time(self, transfer: DataTransfer, src_node: ProcessorNode,
             dst_node: ProcessorNode) -> int:
        """The full on-demand pull serializes before execution."""
        if src_node.node_id == dst_node.node_id:
            return 0
        return transfer.base_time

    def estimate(self, transfer: DataTransfer) -> int:
        """Node-independent estimate for critical-work ranking."""
        return transfer.base_time

    def uniform_lag(self, transfer: DataTransfer) -> int:
        """The node-independent cross-node lag (batch DP fast path)."""
        return transfer.base_time


@dataclass(frozen=True)
class StaticStorageModel:
    """Static storage: fetch inputs and ship outputs back to the store."""

    #: Multiplier over the base time for the fetch + write-back round trip.
    round_trip: float = 2.0

    def __post_init__(self) -> None:
        if self.round_trip < 1:
            raise ValueError(
                f"round_trip must be >= 1, got {self.round_trip}")

    def time(self, transfer: DataTransfer, src_node: ProcessorNode,
             dst_node: ProcessorNode) -> int:
        """Fetch from the static store plus the write-back."""
        if src_node.node_id == dst_node.node_id:
            return 0
        return ceil_units(self.round_trip * transfer.base_time)

    def estimate(self, transfer: DataTransfer) -> int:
        """Node-independent estimate for critical-work ranking."""
        return ceil_units(self.round_trip * transfer.base_time)

    def uniform_lag(self, transfer: DataTransfer) -> int:
        """The node-independent cross-node lag (batch DP fast path)."""
        return ceil_units(self.round_trip * transfer.base_time)


def default_policy_models() -> dict[DataPolicyKind, TransferModel]:
    """The standard mapping from policy kinds to timing models."""
    return {
        DataPolicyKind.REPLICATION: ReplicationModel(),
        DataPolicyKind.REMOTE_ACCESS: RemoteAccessModel(),
        DataPolicyKind.STATIC: StaticStorageModel(),
    }
