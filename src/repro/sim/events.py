"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (the same model as
SimPy, which is not available offline): simulation *processes* are Python
generators that ``yield`` events; the :class:`~repro.sim.engine.Environment`
resumes a process when the event it waits on is processed.

Events move through three states:

1. *pending* — created, not yet triggered;
2. *triggered* — a value (or an exception) has been set and the event has
   been placed on the environment's event queue;
3. *processed* — the environment has popped the event and invoked its
   callbacks (this is when waiting processes resume).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "Initialize",
    "Process",
    "ConditionValue",
    "Condition",
    "AllOf",
    "AnyOf",
]


class _Pending:
    """Sentinel type for "event has no value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Unique sentinel stored in :attr:`Event._value` before the event triggers.
PENDING = _Pending()

#: Scheduling priority for internal bookkeeping events (interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Interrupt(Exception):
    """Raised *inside* a process when another process interrupts it.

    The interrupt carries an arbitrary ``cause`` describing why the process
    was interrupted (for example, a preempting reservation).
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class StopProcess(Exception):
    """Raised by :meth:`Environment.exit` to return early from a process."""

    @property
    def value(self) -> Any:
        """The value the process exits with."""
        return self.args[0]


class Event:
    """A single occurrence that processes may wait for.

    Parameters
    ----------
    env:
        The environment the event lives in.  All scheduling happens through
        this environment's queue.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: When True, a failed event whose failure is never retrieved does not
        #: crash the simulation (used for condition sub-events).
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and sits in the event queue."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception thrown into them.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class Initialize(Event):
    """Internal event that starts a :class:`Process` at creation time."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator and drives it through the event queue.

    A process is itself an event: it triggers when the generator returns
    (successfully, with the generator's return value) or raises (failed).
    Other processes may therefore ``yield`` a process to wait for its
    completion.
    """

    def __init__(self, env: "Environment", generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None when resuming).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process as soon as possible."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)
        # Unsubscribe from the event we were waiting for: the interrupt
        # supersedes it.  The original event may still trigger later; the
        # process can re-wait on it if it wants to.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    result = self._generator.send(event._value)
                else:
                    # The process handles (or propagates) the failure.
                    event.defused = True
                    result = self._generator.throw(
                        type(event._value), event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except StopProcess as exc:
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.defused = False
                self.env.schedule(self)
                break

            if not isinstance(result, Event):
                error = RuntimeError(
                    f"process {self._generator!r} yielded a non-event: {result!r}")
                event = Event(self.env)
                event._ok = False
                event._value = error
                event.defused = True
                continue

            if result.callbacks is not None:
                # The event has not been processed yet: subscribe and pause.
                result.callbacks.append(self._resume)
                self._target = result
                break
            # The event was already processed: feed its outcome immediately.
            event = result

        self.env._active_process = None


class ConditionValue:
    """Ordered mapping from events to their values for condition results."""

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict[Event, Any]:
        """Return a plain ``{event: value}`` dictionary."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of events (used by AllOf / AnyOf)."""

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list[Event], int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed(ConditionValue([]))

    def _collect_values(self) -> ConditionValue:
        # Only *processed* events have delivered their value; a Timeout is
        # "triggered" from construction but has not occurred until processed.
        return ConditionValue(
            [event for event in self._events if event.processed])

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """True when every sub-event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """True when at least one sub-event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Triggers once *all* of the given events have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers once *any* of the given events has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
