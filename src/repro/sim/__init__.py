"""Discrete-event simulation substrate.

A compact process-interaction DES kernel (generators as processes), plus
shared-resource primitives and deterministic named random streams.  The
rest of the library builds its Grid, local-batch, and job-flow simulations
on top of this package.
"""

from .engine import EmptySchedule, Environment, StopSimulation
from .events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Initialize,
    Interrupt,
    Process,
    StopProcess,
    Timeout,
)
from .resources import (
    Container,
    FilterStore,
    Preempted,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)
from .monitoring import Tally, TimeWeightedStat
from .rng import RandomStreams, stable_hash

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopProcess",
    "Initialize",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "PENDING",
    "URGENT",
    "NORMAL",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Request",
    "PriorityRequest",
    "Release",
    "Store",
    "FilterStore",
    "Container",
    "RandomStreams",
    "stable_hash",
    "Tally",
    "TimeWeightedStat",
]
