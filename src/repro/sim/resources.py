"""Shared-resource primitives built on the event kernel.

These mirror the classic DES resource types:

* :class:`Resource` — a counted resource with FIFO request queue (a
  processor node's slot pool, a network link's channel set, ...);
* :class:`PriorityResource` — like :class:`Resource` but the queue is
  ordered by ``(priority, request time)``;
* :class:`Store` — a FIFO buffer of Python objects (a job queue);
* :class:`FilterStore` — a store whose consumers may wait for items
  matching a predicate;
* :class:`Container` — a continuous-level tank (budget pools, quotas).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .engine import Environment
from .events import Event

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Preempted",
    "PreemptiveResource",
    "StorePut",
    "StoreGet",
    "Store",
    "FilterStoreGet",
    "FilterStore",
    "ContainerPut",
    "ContainerGet",
    "Container",
]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager so the resource is always released::

        with resource.request() as req:
            yield req
            ... use the resource ...
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.time = resource.env.now
        resource.queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the request, releasing the slot if already granted."""
        if self in self.resource.queue:
            self.resource.queue.remove(self)
        elif self in self.resource.users:
            self.resource.release(self)


class Release(Event):
    """Event returned by :meth:`Resource.release`; triggers immediately."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        self.succeed()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        #: Requests currently holding a slot.
        self.users: list[Request] = []
        #: Requests waiting for a slot, in grant order.
        self.queue: list[Request] = []

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers once granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return the slot held by ``request`` to the pool."""
        if request in self.users:
            self.users.remove(request)
        self._trigger_requests()
        return Release(self, request)

    def _sorted_queue(self) -> list[Request]:
        """Queue in grant order (FIFO here; overridden in subclasses)."""
        return self.queue

    def _trigger_requests(self) -> None:
        """Grant queued requests while free slots remain."""
        while self.queue and len(self.users) < self._capacity:
            request = self._sorted_queue()[0]
            self.queue.remove(request)
            self.users.append(request)
            request.succeed()


class PriorityRequest(Request):
    """A request carrying a priority (lower value = more urgent)."""

    _ids = itertools.count()

    def __init__(self, resource: "PriorityResource", priority: int = 0,
                 preempt: bool = False):
        self.priority = priority
        self.seq = next(self._ids)
        #: Whether this request may evict a lower-priority holder
        #: (only honoured by :class:`PreemptiveResource`).
        self.preempt = preempt
        #: The process that issued the request (the preemption victim
        #: handle when this request holds a preemptive resource).
        self.process = resource.env.active_process
        super().__init__(resource)

    @property
    def key(self) -> tuple[int, float, int]:
        """Sort key: priority, then request time, then arrival order."""
        return (self.priority, self.time, self.seq)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is served in priority order."""

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Claim a slot with the given priority."""
        return PriorityRequest(self, priority)

    def _sorted_queue(self) -> list[Request]:
        return sorted(self.queue, key=lambda r: r.key)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class Preempted:
    """Interrupt cause delivered to an evicted resource holder.

    Mirrors Condor's preemptive-resume model (the paper's ref. [3]):
    the victim learns who evicted it and how long it had held the
    resource, so it can resume with the remaining work elsewhere.
    """

    by: "PriorityRequest"
    usage_since: float


class PreemptiveResource(PriorityResource):
    """A priority resource where urgent requests evict weaker holders.

    A request made with ``preempt=True`` that finds no free slot evicts
    the *worst* current holder if that holder's priority is strictly
    weaker; the victim's process receives an
    :class:`~repro.sim.events.Interrupt` whose cause is
    :class:`Preempted`.
    """

    def request(self, priority: int = 0,  # type: ignore[override]
                preempt: bool = True) -> PriorityRequest:
        """Claim a slot, optionally evicting a weaker holder."""
        return PriorityRequest(self, priority, preempt)

    def _trigger_requests(self) -> None:
        super()._trigger_requests()
        while self.queue:
            candidate = self._sorted_queue()[0]
            if not getattr(candidate, "preempt", False) or not self.users:
                return
            victim = max(self.users,
                         key=lambda r: r.key)  # type: ignore[attr-defined]
            if victim.key <= candidate.key:  # type: ignore[attr-defined]
                return
            self.users.remove(victim)
            process = getattr(victim, "process", None)
            if process is not None and process.is_alive:
                process.interrupt(
                    Preempted(by=candidate, usage_since=victim.time))
            self.queue.remove(candidate)
            self.users.append(candidate)
            candidate.succeed()


class StorePut(Event):
    """A pending deposit into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """A pending withdrawal from a :class:`Store`."""

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO buffer of arbitrary items with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Withdraw the oldest item; triggers once one is available."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        """Match queued puts and gets until no more progress is possible."""
        progress = True
        while progress:
            progress = False
            for put_event in list(self._put_queue):
                if self._do_put(put_event):
                    self._put_queue.remove(put_event)
                    progress = True
                else:
                    break
            for get_event in list(self._get_queue):
                if self._do_get(get_event):
                    self._get_queue.remove(get_event)
                    progress = True
                else:
                    break


class FilterStoreGet(StoreGet):
    """A withdrawal that only matches items satisfying ``predicate``."""

    def __init__(self, store: "FilterStore",
                 predicate: Callable[[Any], bool]):
        self.predicate = predicate
        super().__init__(store)


class FilterStore(Store):
    """A :class:`Store` whose gets may filter on item attributes."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None
            ) -> FilterStoreGet:  # type: ignore[override]
        """Withdraw the oldest item matching ``predicate`` (any item if None)."""
        if predicate is None:
            predicate = lambda item: True  # noqa: E731 - trivial default
        return FilterStoreGet(self, predicate)

    def _do_get(self, event: StoreGet) -> bool:
        predicate = getattr(event, "predicate", lambda item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                event.succeed(item)
                return True
        # No matching item: leave the get pending but report "handled" so
        # other pending gets still get a chance at the items.
        return False

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            for put_event in list(self._put_queue):
                if self._do_put(put_event):
                    self._put_queue.remove(put_event)
                    progress = True
                else:
                    break
            for get_event in list(self._get_queue):
                if self._do_get(get_event):
                    self._get_queue.remove(get_event)
                    progress = True
                    # Restart the scan: removal may unblock earlier gets.
                    break


class ContainerPut(Event):
    """A pending deposit of ``amount`` into a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    """A pending withdrawal of ``amount`` from a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous stock of a single substance (quota units, budget)."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} out of range [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._put_queue: list[ContainerPut] = []
        self._get_queue: list[ContainerGet] = []

    @property
    def level(self) -> float:
        """The current amount in the container."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; triggers once it fits under capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; triggers once the level suffices."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_queue:
                event = self._put_queue[0]
                if self._level + event.amount <= self.capacity:
                    self._level += event.amount
                    event.succeed()
                    self._put_queue.pop(0)
                    progress = True
            if self._get_queue:
                event = self._get_queue[0]
                if self._level >= event.amount:
                    self._level -= event.amount
                    event.succeed()
                    self._get_queue.pop(0)
                    progress = True
