"""The discrete-event simulation environment.

:class:`Environment` owns the event queue (a binary heap keyed on
``(time, priority, sequence)``) and the simulation clock.  Processes are
plain Python generators registered via :meth:`Environment.process`.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         log.append((name, env.now))
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, "fast", 1))
>>> _ = env.process(clock(env, "slow", 2))
>>> env.run(until=4)
>>> log
[('fast', 0), ('slow', 0), ('fast', 1), ('slow', 2), ('fast', 2), ('fast', 3)]
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional, Union

from .events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Process,
    StopProcess,
    Timeout,
)

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]

#: Positive infinity, the time :meth:`Environment.peek` reports on an empty queue.
_INFINITY = float("inf")


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal exception that ends :meth:`Environment.run` at an event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event's value."""
        if event._ok:
            raise cls(event._value)
        raise event._value


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        The starting value of the simulation clock (default ``0``).
    """

    def __init__(self, initial_time: float = 0):
        self._now = initial_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Register ``generator`` as a new simulation process."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event that triggers when any of ``events`` has."""
        return AnyOf(self, events)

    def exit(self, value: Any = None) -> None:
        """Terminate the *active* process, making it succeed with ``value``.

        Equivalent to ``return value`` inside the process generator; offered
        for symmetry with classic DES APIs.
        """
        raise StopProcess(value)

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0) -> None:
        """Put ``event`` on the queue ``delay`` time units from now."""
        heapq.heappush(self._queue,
                       (self._now + delay, priority, self._eid, event))
        self._eid += 1

    def peek(self) -> float:
        """Return the time of the next scheduled event (inf if none)."""
        if not self._queue:
            return _INFINITY
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next event in the queue.

        Raises
        ------
        EmptySchedule
            If the queue is empty.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An unhandled failure crashes the simulation, mirroring an
            # uncaught exception in sequential code.
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue is exhausted;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed and return its value.
        """
        at: Optional[Event]
        if until is None:
            at = None
        elif isinstance(until, Event):
            at = until
            if at.callbacks is None:
                # Already processed: nothing to run.
                return at.value if at._ok else None
            at.callbacks.append(StopSimulation.callback)
        else:
            horizon = float(until)
            if horizon <= self._now:
                raise ValueError(
                    f"until ({horizon}) must be greater than now ({self._now})")
            at = Event(self)
            at._ok = True
            at._value = None
            # URGENT priority stops the run *before* any ordinary event
            # scheduled exactly at the horizon is processed.
            self.schedule(at, priority=URGENT, delay=horizon - self._now)
            at.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.args[0]
        except EmptySchedule:
            if at is not None and not at.triggered:
                raise RuntimeError(
                    f"no scheduled events left but {at!r} was not triggered")
        return None
