"""Statistics collection for simulation runs.

Two collectors cover most DES measurement needs:

* :class:`Tally` — independent observations (waiting times, costs):
  count / mean / variance via Welford's algorithm, plus extremes;
* :class:`TimeWeightedStat` — a piecewise-constant signal over simulated
  time (queue length, jobs in service): the time-weighted mean weights
  each value by how long it held.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["Tally", "TimeWeightedStat"]


class Tally:
    """Streaming count/mean/std/min/max of independent samples."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = value if self.minimum is None else min(
            self.minimum, value)
        self.maximum = value if self.maximum is None else max(
            self.maximum, value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (0.0 below two samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Tally n={self.count} mean={self.mean:.3f} "
                f"std={self.std:.3f}>")


class TimeWeightedStat:
    """Time-weighted statistics of a piecewise-constant signal.

    >>> stat = TimeWeightedStat(initial=0)
    >>> stat.record(10, 4)   # value becomes 4 at t=10
    >>> stat.record(30, 1)   # value becomes 1 at t=30
    >>> stat.mean(until=40)  # 0 for 10, 4 for 20, 1 for 10 slots
    2.25
    """

    def __init__(self, initial: float = 0.0, start: float = 0.0):
        self._start = start
        self._last_time = start
        self._value = initial
        self._area = 0.0
        self.maximum = initial
        self.minimum = initial

    @property
    def value(self) -> float:
        """The current value of the signal."""
        return self._value

    def record(self, time: float, value: float) -> None:
        """The signal takes ``value`` from ``time`` onward."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value
        self.maximum = max(self.maximum, value)
        self.minimum = min(self.minimum, value)

    def increment(self, time: float, delta: float = 1.0) -> None:
        """Shift the signal by ``delta`` at ``time`` (queue joins/leaves)."""
        self.record(time, self._value + delta)

    def mean(self, until: float) -> float:
        """Time-weighted mean over ``[start, until]``."""
        if until < self._last_time:
            raise ValueError(
                f"until ({until}) precedes the last record "
                f"({self._last_time})")
        width = until - self._start
        if width <= 0:
            return self._value
        area = self._area + self._value * (until - self._last_time)
        return area / width

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TimeWeightedStat value={self._value:g} "
                f"max={self.maximum:g}>")
