"""Deterministic named random-number streams.

Every stochastic component of the simulator draws from its own named
stream so that (a) a single experiment seed reproduces a whole run and
(b) changing how one component consumes randomness does not perturb any
other component's draws.  Streams are ``numpy.random.Generator`` objects
derived from the experiment seed and a stable hash of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stable_hash", "RandomStreams"]


def stable_hash(name: str) -> int:
    """A process-independent 32-bit hash of ``name``.

    Python's builtin ``hash`` is salted per process, so it cannot seed
    reproducible streams; CRC-32 is stable everywhere.
    """
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """Factory of named, deterministic random generators.

    >>> streams = RandomStreams(seed=42)
    >>> a1 = streams.stream("arrivals")
    >>> a2 = RandomStreams(seed=42).stream("arrivals")
    >>> bool(a1.integers(0, 100) == a2.integers(0, 100))
    True
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumption is cumulative within a run.
        """
        if name not in self._streams:
            sequence = np.random.SeedSequence([self.seed, stable_hash(name)])
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def fork(self, name: str, index: int) -> np.random.Generator:
        """Return a fresh generator for the ``index``-th child of ``name``.

        Unlike :meth:`stream`, each call creates a new generator seeded
        only by ``(seed, name, index)`` — useful for per-job randomness
        that must not depend on generation order.
        """
        sequence = np.random.SeedSequence(
            [self.seed, stable_hash(name), int(index)])
        return np.random.default_rng(sequence)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent stream family (e.g. per replication)."""
        return RandomStreams(
            seed=(self.seed * 0x9E3779B1 + stable_hash(name)) % (2**31))
