"""Dynamic reallocation: switching between supporting schedules.

"Innovation of our approach consists in mechanisms of dynamic job-flow
environment reallocation based on scheduling strategies."  A strategy
holds several supporting schedules; when the environment drifts (new
background reservations appear), the metascheduler abandons the active
schedule and activates another variant that is still consistent with
everything observed so far.  The time until *no* variant survives is
the strategy's **time-to-live** — Fig. 4c's persistence factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.schedule import Distribution
from ..core.strategy import Strategy, SupportingSchedule
from ..grid.environment import BackgroundEvent

__all__ = ["invalidates", "TimeToLiveResult", "strategy_time_to_live"]


def invalidates(event: BackgroundEvent, distribution: Distribution,
                executed_before: Optional[int] = None) -> bool:
    """True if the new reservation clashes with the schedule.

    By default the distribution is treated as a *plan*: every placement
    window is stealable until the plan is committed, whenever the event
    arrives.  Pass ``executed_before`` (a simulation time) to grant
    immunity to placements that already completed by then — the
    committed-and-running interpretation.
    """
    for placement in distribution:
        if placement.node_id != event.node_id:
            continue
        if executed_before is not None and placement.end <= executed_before:
            continue  # already executed
        if placement.start < event.end and event.start < placement.end:
            return True
    return False


@dataclass
class TimeToLiveResult:
    """Outcome of replaying environment drift against one strategy."""

    #: Slots from strategy activation until no variant remained
    #: (the horizon when the strategy survived the whole replay).
    ttl: int
    #: True when some variant was still alive at the horizon.
    survived: bool
    #: How many times the active schedule had to be switched.
    switches: int
    #: The variant active at the end (None when the strategy died).
    final: Optional[SupportingSchedule]


def strategy_time_to_live(strategy: Strategy,
                          events: Sequence[BackgroundEvent],
                          horizon: int,
                          min_level: float = 0.0) -> TimeToLiveResult:
    """Replay drift events and measure the strategy's time-to-live.

    The cheapest admissible variant covering ``min_level`` (the
    environment's forecast estimation level — a variant planned below it
    reserves too little to be usable) is activated first.  Each arriving
    event is checked against the *active* schedule only — other covering
    variants are kept as fallbacks and validated against the full event
    history when activated.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if not 0.0 <= min_level <= 1.0:
        raise ValueError(f"min_level must lie in [0, 1], got {min_level}")

    alive = [schedule for schedule in strategy.admissible_schedules()
             if schedule.level >= min_level - 1e-9]
    if not alive:
        # Nothing covers the forecast: fall back to whatever exists
        # (the metascheduler would rather run optimistically than not).
        alive = list(strategy.admissible_schedules())
    if not alive:
        return TimeToLiveResult(ttl=0, survived=False, switches=0, final=None)
    active = min(alive, key=lambda s: (s.outcome.cost, s.outcome.makespan))

    seen: list[BackgroundEvent] = []
    switches = 0
    for event in sorted(events, key=lambda e: e.arrival):
        if event.arrival >= horizon:
            break
        seen.append(event)
        if not invalidates(event, active.distribution):
            continue
        # The active schedule died; look for a fallback consistent with
        # every event observed so far.
        alive = [
            candidate for candidate in alive
            if candidate is not active
            and not any(invalidates(past, candidate.distribution)
                        for past in seen)
        ]
        if not alive:
            return TimeToLiveResult(ttl=event.arrival, survived=False,
                                    switches=switches, final=None)
        # Prefer the cheapest surviving variant, like the initial choice.
        active = min(alive, key=lambda s: (s.outcome.cost,
                                           s.outcome.makespan))
        switches += 1

    return TimeToLiveResult(ttl=horizon, survived=True, switches=switches,
                            final=active)
