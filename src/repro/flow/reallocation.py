"""Dynamic reallocation: switching between supporting schedules.

"Innovation of our approach consists in mechanisms of dynamic job-flow
environment reallocation based on scheduling strategies."  A strategy
holds several supporting schedules; when the environment drifts (new
background reservations appear), the metascheduler abandons the active
schedule and activates another variant that is still consistent with
everything observed so far.  The time until *no* variant survives is
the strategy's **time-to-live** — Fig. 4c's persistence factor.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.schedule import Distribution
from ..core.strategy import Strategy, SupportingSchedule
from ..grid.environment import BackgroundEvent

__all__ = ["invalidates", "TimeToLiveResult", "strategy_time_to_live"]


def invalidates(event: BackgroundEvent, distribution: Distribution,
                executed_before: Optional[int] = None) -> bool:
    """True if the new reservation clashes with the schedule.

    By default the distribution is treated as a *plan*: every placement
    window is stealable until the plan is committed, whenever the event
    arrives.  Pass ``executed_before`` (a simulation time) to grant
    immunity to placements that already completed by then — a placement
    with ``end <= executed_before`` has already run to completion and
    cannot be stolen — the committed-and-running interpretation.

    Resolution is O(log placements-on-node) per event through a
    :class:`_NodeIntervalIndex` attached to the distribution on first
    query (placements are append-once at construction, so the index
    never goes stale); the old per-event linear scan over every
    placement dominated drift replays once speculation raised event
    counts.
    """
    index = getattr(distribution, "_invalidation_index", None)
    if index is None:
        index = _NodeIntervalIndex(distribution)
        distribution._invalidation_index = index  # type: ignore[attr-defined]
    return index.clashes(event, executed_before)


class _NodeIntervalIndex:
    """Per-node interval index over a distribution's placements.

    Placements are grouped by node and start-sorted, with a running
    prefix maximum over their ends.  A drift event on one node then
    resolves in O(log placements-on-node): among the placements
    starting before the event's end (a bisection), some interval
    overlaps iff the largest end among them exceeds the event's start —
    exactly the :func:`invalidates` predicate, without scanning nodes
    the event does not touch.
    """

    def __init__(self, distribution: Distribution):
        spans_by_node: dict[int, list[tuple[int, int]]] = {}
        for placement in distribution:
            spans_by_node.setdefault(placement.node_id, []).append(
                (placement.start, placement.end))
        self._starts: dict[int, list[int]] = {}
        self._max_ends: dict[int, list[int]] = {}
        for node_id, spans in spans_by_node.items():
            spans.sort()
            running = 0
            max_ends = []
            for _, end in spans:
                if end > running:
                    running = end
                max_ends.append(running)
            self._starts[node_id] = [start for start, _ in spans]
            self._max_ends[node_id] = max_ends

    def nodes(self) -> Sequence[int]:
        """Node ids this distribution places work on."""
        return tuple(self._starts)

    def clashes(self, event: BackgroundEvent,
                executed_before: Optional[int] = None) -> bool:
        """Equivalent of ``invalidates(event, distribution, ...)``."""
        starts = self._starts.get(event.node_id)
        if starts is None:
            return False
        # Only placements starting before the event's end can overlap.
        index = bisect.bisect_left(starts, event.end)
        if index == 0:
            return False
        floor = event.start
        if executed_before is not None and executed_before > floor:
            floor = executed_before
        # Overlap (and, with `executed_before`, still-running) iff some
        # such placement ends after both the event start and the
        # execution frontier — i.e. the prefix max does.
        return self._max_ends[event.node_id][index - 1] > floor


@dataclass
class TimeToLiveResult:
    """Outcome of replaying environment drift against one strategy."""

    #: Slots from strategy activation until no variant remained
    #: (the horizon when the strategy survived the whole replay).
    ttl: int
    #: True when some variant was still alive at the horizon.
    survived: bool
    #: How many times the active schedule had to be switched.
    switches: int
    #: The variant active at the end (None when the strategy died).
    final: Optional[SupportingSchedule]


def strategy_time_to_live(strategy: Strategy,
                          events: Sequence[BackgroundEvent],
                          horizon: int,
                          min_level: float = 0.0) -> TimeToLiveResult:
    """Replay drift events and measure the strategy's time-to-live.

    The cheapest admissible variant covering ``min_level`` (the
    environment's forecast estimation level — a variant planned below it
    reserves too little to be usable) is activated first.  The replay
    maintains the *alive* set incrementally: variants are bucketed by
    the nodes they place work on, so each arriving event only consults
    the variants that actually touch its node (each in O(log
    placements-on-node) through the per-node interval index), the set
    always equals the variants consistent with the full history, and a
    fallback switch never rescans past events.  A switch is counted
    only when the *active* schedule dies.

    Events replay in deterministic order ``(arrival, node_id, start)``
    — simultaneous arrivals do not reorder across runs or platforms.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if not 0.0 <= min_level <= 1.0:
        raise ValueError(f"min_level must lie in [0, 1], got {min_level}")

    alive = strategy.covering_schedules(min_level)
    if not alive:
        # Nothing covers the forecast: fall back to whatever exists
        # (the metascheduler would rather run optimistically than not).
        alive = list(strategy.admissible_schedules())
    if not alive:
        return TimeToLiveResult(ttl=0, survived=False, switches=0, final=None)
    indexes = {id(schedule): _NodeIntervalIndex(schedule.distribution)
               for schedule in alive}
    active = min(alive, key=lambda s: (s.outcome.cost, s.outcome.makespan))

    # Bucket variants by the nodes they touch: an event can only kill
    # the variants placing work on its node, so the replay visits those
    # instead of the whole alive set (dead variants are tombstoned, and
    # the rare fallback switch filters the original order-preserving
    # list — min() then keeps the historical first-of-equals choice).
    by_node: dict[int, list[SupportingSchedule]] = {}
    for schedule in alive:
        for node_id in indexes[id(schedule)].nodes():
            by_node.setdefault(node_id, []).append(schedule)
    dead: set[int] = set()
    remaining = len(alive)

    switches = 0
    for event in sorted(events,
                        key=lambda e: (e.arrival, e.node_id, e.start)):
        if event.arrival >= horizon:
            break
        active_died = False
        for candidate in by_node.get(event.node_id, ()):
            if id(candidate) in dead:
                continue
            if indexes[id(candidate)].clashes(event):
                dead.add(id(candidate))
                remaining -= 1
                if candidate is active:
                    active_died = True
        if not active_died:
            continue
        if not remaining:
            return TimeToLiveResult(ttl=event.arrival, survived=False,
                                    switches=switches, final=None)
        # Prefer the cheapest surviving variant, like the initial choice.
        active = min((s for s in alive if id(s) not in dead),
                     key=lambda s: (s.outcome.cost, s.outcome.makespan))
        switches += 1

    return TimeToLiveResult(ttl=horizon, survived=True, switches=switches,
                            final=active)
