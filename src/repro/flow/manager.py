"""Job managers: the middle tier of the Fig. 1 hierarchy.

A job manager controls one domain — a group of processor nodes "with
the similar architecture, contents, administrating policy" — and builds
and maintains scheduling strategies for the jobs the metascheduler
routes to it, cooperating with the (simulated) local batch systems via
resource requests.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.calendar import ReservationCalendar
from ..core.context import SchedulingContext
from ..core.costs import CostModel
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.strategy import (
    DataPolicyKind,
    Strategy,
    StrategyGenerator,
    StrategyType,
)
from ..core.transfers import TransferModel
from ..local.request import ResourceRequest

__all__ = ["JobManager"]


class JobManager:
    """Strategy planner for one domain of the virtual organization.

    Parameters
    ----------
    domain:
        The domain name this manager administers.
    pool:
        The *whole* VO pool; the manager plans only on its domain's
        nodes (all nodes when the pool has a single domain).
    """

    def __init__(self, domain: str, pool: ResourcePool,
                 policy_models: Optional[Mapping[DataPolicyKind,
                                                 TransferModel]] = None,
                 cost_model: Optional[CostModel] = None,
                 context: Optional[SchedulingContext] = None):
        self.domain = domain
        nodes = pool.by_domain(domain)
        if not nodes:
            raise ValueError(f"domain {domain!r} has no nodes")
        #: The manager's own slice of the VO resources.
        self.pool = ResourcePool(list(nodes))
        self.generator = StrategyGenerator(self.pool, policy_models,
                                           cost_model, context=context)
        #: Strategies currently maintained, by job id.
        self.strategies: dict[str, Strategy] = {}

    def plan(self, job: Job,
             calendars: Mapping[int, ReservationCalendar],
             stype: StrategyType, release: int = 0,
             seed_hints: Optional[Mapping[float,
                                          Mapping[str, int]]] = None
             ) -> Strategy:
        """Build (and retain) a strategy for a job on this domain.

        ``calendars`` may cover the whole VO; only this domain's node
        calendars are consulted.  ``seed_hints`` (a stale sibling
        strategy's per-level assignments) warm-start an incremental
        repair; see :meth:`~repro.core.strategy.StrategyGenerator.
        generate`.
        """
        local = {node.node_id: calendars[node.node_id]
                 for node in self.pool}
        strategy = self.generator.generate(job, local, stype,
                                           release=release,
                                           seed_hints=seed_hints)
        self.strategies[job.job_id] = strategy
        return strategy

    def drop(self, job_id: str) -> None:
        """Forget the strategy of a finished or rejected job."""
        self.strategies.pop(job_id, None)

    def resource_requests(self, strategy: Strategy) -> list[ResourceRequest]:
        """The requests sent to local batch systems for the chosen
        supporting schedule (one advance reservation per task)."""
        chosen = strategy.best_schedule()
        if chosen is None or chosen.distribution is None:
            return []
        return [
            ResourceRequest.from_placement(strategy.job.job_id, placement,
                                           owner=strategy.job.owner)
            for placement in chosen.distribution
        ]
