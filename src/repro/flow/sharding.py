"""Domain sharding: partitioning the VO and planning per shard.

The paper's virtual organization is a federation of *domains*, each
with its own job manager; nothing in the model requires one process to
plan every domain's jobs serially.  This module supplies the pieces the
sharded online engine (:mod:`repro.flow.sharded`) and the DES lane
(:class:`repro.flow.simulation.OnlineSimulation` with
``shards > 1``) are built from:

* :func:`partition_domains` — a balanced, deterministic partition of
  the VO's domains into shards (a disjoint cover of the pool;
  property-tested in ``tests/property/test_shard_partition.py``);
* :func:`plan_with_cache` — the flow layer's graded plan-cache read
  (exact hit → warm repair → coarse seed → cold generation), factored
  out of the metascheduler so shard planners and the metascheduler
  share one implementation and one set of counters;
* :class:`ShardPlanner` — one shard's managers over one shard-owned
  :class:`~repro.core.context.SchedulingContext`, choosing the
  cheapest admissible offer exactly like the metascheduler does over
  the full VO (so one shard over all domains reproduces sequential
  dispatch bit for bit);
* :func:`replica_calendars` — bulk reconstruction of a shard's
  calendars from shared-memory gap tables on the worker side.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Mapping, Optional, Sequence, Tuple)

from ..core.calendar import GapTable, ReservationCalendar
from ..core.context import PlanCache, SchedulingContext
from ..perf import PERF
from .manager import JobManager

if TYPE_CHECKING:
    from ..core.job import Job
    from ..core.resources import ResourcePool
    from ..core.strategy import Strategy, StrategyType

__all__ = ["partition_domains", "plan_with_cache", "ShardPlanner",
           "replica_calendars"]


def partition_domains(domains: Sequence[str],
                      shards: int) -> list[Tuple[str, ...]]:
    """Partition domain names into at most ``shards`` balanced groups.

    Deterministic round-robin over the domains in the order given
    (callers pass ``pool.domains()`` — first-appearance order), so the
    same layout always produces the same partition: shard ``i`` owns
    domains ``i, i + shards, i + 2 * shards, ...``.  Every domain lands
    in exactly one shard (a disjoint cover) and group sizes differ by
    at most one.  With more shards than domains the extra shards are
    simply not created; with ``shards == 1`` the single "shard" is the
    whole VO.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if not domains:
        raise ValueError("cannot partition an empty domain list")
    if len(set(domains)) != len(domains):
        raise ValueError(f"duplicate domain names in {domains!r}")
    count = min(shards, len(domains))
    groups: list[list[str]] = [[] for _ in range(count)]
    for index, domain in enumerate(domains):
        groups[index % count].append(domain)
    return [tuple(group) for group in groups]


def plan_with_cache(manager: JobManager, job: "Job", stype: "StrategyType",
                    release: int,
                    calendars: Mapping[int, ReservationCalendar],
                    plans: PlanCache, *,
                    epochs: Optional[Tuple[int, ...]] = None,
                    retain: bool = True) -> "Strategy":
    """Plan one job on one manager through the semantic plan cache.

    The single implementation behind both the metascheduler's
    ``_plan_for`` and the shard planners, so every lane counts reuse
    identically.  Reads resolve in four grades:

    * **exact hit** (``flow.plan_cache_hits``) — a variant with the
      same structural hash, the same release, and an unchanged epoch
      slice over the domain's nodes exists; generation inputs are
      byte-identical, so the strategy is served outright (rebound to
      this job's id when it was generated for a template sibling —
      ``flow.plan_rebinds``);
    * **warm repair** (``flow.plan_repairs``) — a same-structure
      variant exists but its release/epochs drifted; its per-level
      assignments seed a warm-started regeneration that re-searches
      only what no longer fits, bit-identical to a cold replan;
    * **coarse seed** (``flow.plan_coarse_hits``) — not even the shape
      matched (the all-unique-jobs regime), but a strategy was
      previously generated for this (family, domain, pool signature);
      its assignments still warm-start the DP.  Seeds only *hint* the
      warm start — exact pruning ignores hints that no longer fit — so
      outcomes stay bit-identical to a cold pass;
    * **cold miss** (``flow.plan_coarse_misses``) — generate with no
      seed at all.

    ``epochs`` is the domain's epoch slice; when omitted it is read off
    ``calendars`` directly (snapshot copies share content versions with
    their masters — the same values ``grid.epoch_slice`` reports), so
    no grid handle is needed and worker processes can plan against
    replica calendars.  Freshly generated strategies are stored under
    their
    semantic key and as the coarse seed for their (family, domain,
    pool).  With ``retain=False`` the manager's per-job strategy
    retention is skipped — the sharded batch lane plans 10^5+ jobs
    through long-lived managers and must not accumulate a strategy per
    job id.
    """
    shape_hash = job.shape_hash
    structural_hash = job.structural_hash
    node_ids = manager.pool.node_ids()
    if epochs is None:
        epochs = tuple(calendars[node_id].version for node_id in node_ids)
    cached = plans.lookup(shape_hash, structural_hash, stype,
                          manager.domain, release, epochs)
    if cached is not None:
        if PERF.enabled:
            PERF.incr("flow.plan_cache_hits")
        strategy = cached.rebind(job)
        if strategy is not cached:
            # Served across template siblings: same structure, same
            # epochs — only the recorded job identity differs.
            if PERF.enabled:
                PERF.incr("flow.plan_rebinds")
            plans.store(shape_hash, structural_hash, stype,
                        manager.domain, release, epochs, strategy)
        if retain:
            # Keep the manager's retention behaviour identical to a
            # fresh plan() call.
            manager.strategies[job.job_id] = strategy
        return strategy
    seed = plans.repair_seed(shape_hash, structural_hash, stype,
                             manager.domain)
    if seed is not None:
        if PERF.enabled:
            PERF.incr("flow.plan_repairs")
        seed_hints = seed.level_hints()
    else:
        if PERF.enabled:
            PERF.incr("flow.plan_cache_misses")
        coarse = plans.coarse_seed(stype, manager.domain, node_ids)
        if coarse is not None:
            if PERF.enabled:
                PERF.incr("flow.plan_coarse_hits")
            seed_hints = coarse.level_hints()
        else:
            if PERF.enabled:
                PERF.incr("flow.plan_coarse_misses")
            seed_hints = None
    strategy = manager.plan(job, calendars, stype, release=release,
                            seed_hints=seed_hints)
    if not retain:
        manager.drop(job.job_id)
    plans.store(shape_hash, structural_hash, stype, manager.domain,
                release, epochs, strategy)
    plans.store_coarse(stype, manager.domain, node_ids, strategy)
    return strategy


class ShardPlanner:
    """One shard's job managers over one shard-owned context.

    Owns a :class:`~repro.core.context.SchedulingContext` (per the
    sharded design: contexts are shard-private, so concurrent shards
    never touch each other's caches) and one
    :class:`~repro.flow.manager.JobManager` per owned domain, in
    partition order.  :meth:`plan` mirrors the metascheduler's
    ``plan_job`` offer competition — cheapest admissible offer wins,
    first manager wins cost ties — restricted to the shard's domains,
    so a single shard owning every domain is the sequential
    metascheduler, bit for bit.
    """

    def __init__(self, shard_id: int, domains: Sequence[str],
                 pool: "ResourcePool", policy_models=None, cost_model=None,
                 context: Optional[SchedulingContext] = None):
        if not domains:
            raise ValueError(f"shard {shard_id} owns no domains")
        self.shard_id = shard_id
        self.domains = tuple(domains)
        self.context = context if context is not None else SchedulingContext()
        self.managers = [
            JobManager(domain, pool, policy_models, cost_model,
                       context=self.context)
            for domain in self.domains
        ]
        #: The shard's node ids, manager (domain) order then pool order —
        #: the slice of the VO this planner reads and its commits touch.
        self.node_ids: Tuple[int, ...] = tuple(
            node_id for manager in self.managers
            for node_id in manager.pool.node_ids())

    def plan(self, job: "Job", stype: "StrategyType", release: int,
             calendars: Mapping[int, ReservationCalendar]
             ) -> Optional[Tuple[JobManager, "Strategy"]]:
        """The shard's best offer for a job, or None when inadmissible.

        ``calendars`` must cover (at least) the shard's nodes; managers
        slice their own domains out.  Nothing is booked and nothing is
        retained per job id (``retain=False`` — see
        :func:`plan_with_cache`).
        """
        best: Optional[Tuple[JobManager, "Strategy"]] = None
        best_cost = float("inf")
        for manager in self.managers:
            strategy = plan_with_cache(manager, job, stype, release,
                                       calendars, self.context.plans,
                                       retain=False)
            chosen = strategy.best_schedule()
            if chosen is None:
                continue
            if chosen.outcome.cost < best_cost:
                best = (manager, strategy)
                best_cost = chosen.outcome.cost
        return best


def replica_calendars(tables: Mapping[int, GapTable],
                      tag: str = "replica"
                      ) -> dict[int, ReservationCalendar]:
    """Rebuild per-node calendars from (attached) gap tables.

    The worker side of an epoch sync: given the zero-copy gap-table
    views of a :class:`~repro.core.placement.SharedGapExport`, rebuild
    real calendars the planning kernel can run against.  A table with
    ``n + 1`` gaps encodes ``n`` reservations — reservation ``k`` is
    exactly ``[gap_end[k], gap_start[k + 1])`` (zero-length gaps are
    kept by the table, so even back-to-back reservations round-trip) —
    and :meth:`~repro.core.calendar.ReservationCalendar.from_busy`
    bulk-loads them in O(n).  Original reservation tags are not
    shipped: workers only plan against free space, never release or
    re-tag, so all replica reservations carry ``tag``.
    """
    calendars: dict[int, ReservationCalendar] = {}
    for node_id, table in tables.items():
        gaps = table.gap_start.shape[0]
        calendars[node_id] = ReservationCalendar.from_busy(
            table.gap_end[:gaps - 1], table.gap_start[1:], tag=tag)
    return calendars
