"""Virtual organization: the full framework wired together.

Bundles the resource pool, the Grid environment state, the quota
economics, and the hierarchical metascheduler into a single façade —
what a deployment of the paper's framework would look like from a user's
point of view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..core.costs import CostModel
from ..core.job import Job
from ..core.resources import NodeGroup, ResourcePool
from ..core.strategy import StrategyType
from ..grid.environment import GridEnvironment
from .economics import VOEconomics
from .metascheduler import FlowRecord, Metascheduler

__all__ = ["FlowSummary", "VirtualOrganization"]


@dataclass
class FlowSummary:
    """Aggregate view of a dispatched batch."""

    total: int
    committed: int
    inadmissible: int
    conflicts: int
    budget_rejections: int
    reallocations: int

    @property
    def admission_rate(self) -> float:
        """Fraction of jobs that got a committed schedule."""
        return self.committed / self.total if self.total else 0.0


class VirtualOrganization:
    """One VO: users, resources, economics, and the scheduling hierarchy."""

    def __init__(self, pool: ResourcePool,
                 cost_model: Optional[CostModel] = None,
                 with_economics: bool = True,
                 full_hierarchy: bool = False):
        """``full_hierarchy`` routes commitments through per-domain
        local resource managers (the complete Fig. 1 stack)."""
        self.pool = pool
        self.grid = GridEnvironment(pool)
        self.economics = VOEconomics(cost_model) if with_economics else None
        self.metascheduler = Metascheduler(
            self.grid, cost_model=cost_model, economics=self.economics,
            use_local_managers=full_hierarchy)

    # ------------------------------------------------------------------

    def register_user(self, name: str, budget: float):
        """Open a quota account for a user."""
        if self.economics is None:
            raise RuntimeError("this VO runs without economics")
        return self.economics.open_account(name, budget)

    def preload_background(self, rng: np.random.Generator,
                           busy_fraction: float, horizon: int) -> int:
        """Occupy resources with independent-flow background load."""
        return self.grid.apply_background_load(rng, busy_fraction, horizon)

    def submit(self, job: Job, stype: StrategyType) -> None:
        """Queue a job on the flow of the given strategy type."""
        self.metascheduler.submit(job, stype)

    def dispatch(self, release: int = 0) -> list[FlowRecord]:
        """Plan and commit everything pending."""
        return self.metascheduler.dispatch(release=release)

    def run_flow(self, jobs: Iterable[tuple[Job, StrategyType]],
                 release: int = 0) -> list[FlowRecord]:
        """Submit and dispatch a batch in one call."""
        for job, stype in jobs:
            self.submit(job, stype)
        return self.dispatch(release=release)

    # ------------------------------------------------------------------

    @staticmethod
    def summarize(records: Iterable[FlowRecord]) -> FlowSummary:
        """Aggregate dispatch outcomes."""
        records = list(records)
        return FlowSummary(
            total=len(records),
            committed=sum(1 for r in records if r.committed),
            inadmissible=sum(1 for r in records
                             if r.reason == "inadmissible"),
            conflicts=sum(1 for r in records if r.reason == "conflict"),
            budget_rejections=sum(1 for r in records
                                  if r.reason == "budget"),
            reallocations=sum(r.reallocations for r in records),
        )

    def load_by_group(self, start: int, end: int,
                      jobs_only: bool = True) -> dict[NodeGroup, float]:
        """Average node load per performance group (Fig. 4a)."""
        if jobs_only:
            return self.grid.utilization_by_group_tagged(start, end)
        return self.grid.utilization_by_group(start, end)
