"""Economic model of the virtual organization.

Section 3: cost functions "can be used in economical models of resource
distribution in virtual organizations ... full costing in CF is not
calculated in real money, but in some conventional units (quotas) ...
user should pay additional cost in order to use more powerful resource
or to start the task faster."  Section 5 adds dynamic priority changes,
"when virtual organization user changes execution cost for a specific
resource".

Accounts hold quota units; scheduling charges the CF cost of the chosen
distribution; users may bid a surge factor that raises both their charge
and their flow priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.costs import CostModel, VolumeOverTimeCost, distribution_cost
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution

__all__ = ["InsufficientBudget", "UserAccount", "VOEconomics"]


class InsufficientBudget(RuntimeError):
    """The user's quota cannot cover the requested schedule."""


@dataclass
class UserAccount:
    """One VO user's quota account."""

    name: str
    budget: float
    spent: float = 0.0
    #: Current bid multiplier; > 1 buys priority, paid on every charge.
    surge: float = 1.0

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")
        if self.surge <= 0:
            raise ValueError(f"surge must be positive, got {self.surge}")

    @property
    def remaining(self) -> float:
        """Unspent quota."""
        return self.budget - self.spent

    def can_afford(self, amount: float) -> bool:
        """True when the (surged) amount fits the remaining quota."""
        return self.remaining >= amount * self.surge


class VOEconomics:
    """Quota accounting plus per-job pricing for one VO."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or VolumeOverTimeCost()
        self._accounts: dict[str, UserAccount] = {}
        #: Per-node price multipliers ("user changes execution cost for
        #: a specific resource" — Section 5's dynamic priority lever).
        self._node_surge: dict[int, float] = {}

    def open_account(self, name: str, budget: float) -> UserAccount:
        """Create a user account (error on duplicates)."""
        if name in self._accounts:
            raise ValueError(f"account {name!r} already exists")
        account = UserAccount(name=name, budget=budget)
        self._accounts[name] = account
        return account

    def account(self, name: str) -> UserAccount:
        """Look up an account."""
        try:
            return self._accounts[name]
        except KeyError:
            raise KeyError(f"no account {name!r}") from None

    def has_account(self, name: str) -> bool:
        """True when the user has an account."""
        return name in self._accounts

    def set_surge(self, name: str, surge: float) -> None:
        """Dynamic priority change: the user re-bids their factor."""
        if surge <= 0:
            raise ValueError(f"surge must be positive, got {surge}")
        self.account(name).surge = surge

    def priority_of(self, name: str) -> float:
        """Flow priority: higher surge bids are served first."""
        return self.account(name).surge

    def set_node_surge(self, node_id: int, factor: float) -> None:
        """Re-price one resource: its slots now cost ``factor``× more.

        Raising a node's price steers cost-minimizing flows away from
        it — the VO's owner-side counterpart of user surge bids.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self._node_surge[node_id] = factor

    def node_surge(self, node_id: int) -> float:
        """The current price multiplier of one node (default 1)."""
        return self._node_surge.get(node_id, 1.0)

    def quote(self, distribution: Distribution, job: Job,
              pool: ResourcePool) -> float:
        """Price of a distribution in quota units (before user surge).

        Each placement's cost is scaled by its node's surge factor.
        """
        if not self._node_surge:
            return distribution_cost(distribution, job, pool,
                                     self.cost_model)
        total = 0.0
        for placement in distribution:
            task = job.task(placement.task_id)
            node = pool.node(placement.node_id)
            total += (self.cost_model.task_cost(task, placement, node)
                      * self.node_surge(node.node_id))
        return total

    def charge(self, name: str, distribution: Distribution, job: Job,
               pool: ResourcePool) -> float:
        """Debit the user for a committed schedule; returns the amount.

        Raises :class:`InsufficientBudget` (leaving the account intact)
        when the surged price exceeds the remaining quota.
        """
        account = self.account(name)
        amount = self.quote(distribution, job, pool) * account.surge
        if account.remaining < amount:
            raise InsufficientBudget(
                f"user {name!r} needs {amount:.1f} quota units but has "
                f"{account.remaining:.1f}")
        account.spent += amount
        return amount

    def refund(self, name: str, amount: float) -> None:
        """Credit back a previously charged amount (cancelled job)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        account = self.account(name)
        account.spent = max(0.0, account.spent - amount)
