"""Online operation of the framework on the discrete-event kernel.

The experiment studies (:mod:`repro.experiments.study`) evaluate the
framework analytically — plan, commit, replay.  This module runs it
*live*: a Poisson stream of compound jobs arrives over simulated time;
each arrival is planned and committed by the metascheduler against the
current environment; committed tasks then execute on
:class:`~repro.grid.node.NodeAgent` processes with their **actual**
durations, so an overrunning producer really does delay its consumers
and the next reservation on the same node — the end-to-end QoS picture
the paper's framework is meant to control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.strategy import StrategyType
from ..grid.data import default_policy_models
from ..grid.environment import GridEnvironment
from ..grid.node import NodeAgent
from ..perf import PERF
from ..sim import Environment, RandomStreams, TimeWeightedStat
from .economics import VOEconomics
from .metascheduler import FlowRecord, Metascheduler, PlannedDispatch

__all__ = ["OnlineConfig", "JobOutcome", "OnlineSimulation"]


@dataclass(frozen=True)
class OnlineConfig:
    """Parameters of an online run."""

    #: Simulated slots during which jobs keep arriving.
    horizon: int = 300
    #: Mean inter-arrival gap between jobs (slots).
    mean_interarrival: float = 12.0
    #: Background utilization pre-loaded before the run.
    busy_fraction: float = 0.2
    background_burst: int = 20
    #: Strategy families assigned round-robin to arrivals.
    stypes: tuple[StrategyType, ...] = (
        StrategyType.S1, StrategyType.S2, StrategyType.S3,
        StrategyType.MS1)
    #: When True (default) actual durations stay within the activated
    #: schedule's planning level — estimates hold and jobs are punctual.
    #: When False actual levels are drawn over the whole [0, 1] range,
    #: so underestimated tasks overrun their reservations and push both
    #: their successors and the node's later work (QoS erosion).
    actual_within_plan: bool = True
    #: How many times a job whose variants were all stolen between
    #: planning and commitment is re-planned (epoch-aware: unchanged
    #: domains reuse their cached strategies).  0 keeps the historical
    #: reject-on-conflict behaviour.
    conflict_retries: int = 0
    #: Simulated slots between planning a job and committing its chosen
    #: schedule — the metascheduler's decision lag.  0 (the historical
    #: behaviour) plans and commits at the same instant, so nothing can
    #: drift in between; a positive lag lets other jobs commit first,
    #: making commitment conflicts (and hence epoch-aware replans that
    #: exercise the plan cache) actually possible.  Plans target release
    #: at the commit instant, so schedules never start before they are
    #: booked.
    plan_latency: int = 0
    #: Speculative pre-planning: after every commitment that drifts the
    #: environment, jobs sitting in the plan-latency window are
    #: re-planned against the new epochs in zero simulated time (the
    #: decision lag models metascheduler think-time, so pre-computing
    #: during it is free).  Their own commit then finds warm plan-cache
    #: entries instead of paying a cold replan on conflict.  A
    #: speculation is invalidated only by further epoch drift — nothing
    #: is thrown away wholesale; ``flow.speculative_fresh`` counts
    #: speculations still fresh at commit time, ``flow.
    #: speculative_wasted`` those overtaken by later drift (not a
    #: ``*_hits``/``*_misses`` pair — the suffix is reserved for
    #: context caches).  Strictly a cache-warming policy: outcomes are
    #: bit-identical either way.
    speculate: bool = False
    #: Domain shards for the in-process concurrent lane.  With the
    #: default 1, every arrival competes over the whole VO (the
    #: historical behaviour, bit for bit).  With ``shards > 1`` the
    #: VO's domains are partitioned (:func:`repro.flow.sharding.
    #: partition_domains`) and arrival ``index`` is routed to shard
    #: ``index % shards``: its offer competition — and any conflict
    #: replans — stay inside that shard's managers, so per-arrival
    #: planning cost scales down with the shard's domain count.  For
    #: the process-parallel batch lane see
    #: :class:`repro.flow.sharded.ShardedSimulation`.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not self.stypes:
            raise ValueError("at least one strategy family is required")
        if self.conflict_retries < 0:
            raise ValueError(
                f"conflict_retries must be >= 0, got {self.conflict_retries}")
        if self.plan_latency < 0:
            raise ValueError(
                f"plan_latency must be >= 0, got {self.plan_latency}")
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")


@dataclass
class JobOutcome:
    """End-to-end accounting for one job that entered the system."""

    job_id: str
    stype: StrategyType
    submitted: int
    committed: bool
    reason: str = ""
    #: Completion bound promised by the supporting schedule.
    planned_makespan: Optional[int] = None
    #: When the last task actually finished on the DES clock.
    actual_makespan: Optional[int] = None
    #: True when the actual completion met the job's fixed time.
    met_deadline: Optional[bool] = None
    charge: Optional[float] = None

    @property
    def slack(self) -> Optional[int]:
        """Planned minus actual completion (negative: ran late)."""
        if self.planned_makespan is None or self.actual_makespan is None:
            return None
        return self.planned_makespan - self.actual_makespan


class OnlineSimulation:
    """Drives jobs through plan → commit → execute on the DES clock."""

    def __init__(self, pool: ResourcePool, seed: int = 0,
                 config: Optional[OnlineConfig] = None,
                 economics: Optional[VOEconomics] = None,
                 job_factory: Optional[Callable[..., Job]] = None):
        """``job_factory(rng, index)`` -> Job; defaults to the Section 4
        random workload generator."""
        self.pool = pool
        self.config = config or OnlineConfig()
        self.streams = RandomStreams(seed)
        self.sim = Environment()
        self.grid = GridEnvironment(pool)
        self.metascheduler = Metascheduler(
            self.grid, economics=economics,
            conflict_retries=self.config.conflict_retries)
        #: The one long-lived cache layer of the whole run: plan cache,
        #: fit memos, and gap tables carry across arrivals instead of
        #: starting cold per job.
        self.context = self.metascheduler.context
        self.agents = {node.node_id: NodeAgent(self.sim, node)
                       for node in pool}
        #: Jobs planned-and-committed but not yet finished, over time.
        self.in_system = TimeWeightedStat()
        self.outcomes: list[JobOutcome] = []
        #: Jobs planned but still in their plan-latency window, by id.
        self._pending: dict[str, PlannedDispatch] = {}
        #: Pool-wide epoch slice each pending job was last speculatively
        #: re-planned against, by job id.
        self._speculation_epochs: dict[str, tuple[int, ...]] = {}
        self._policy_models = default_policy_models()
        if job_factory is None:
            from ..workload.generator import generate_job

            job_factory = generate_job
        self._job_factory = job_factory
        #: Per-shard manager groups for the in-process concurrent lane
        #: (None when unsharded).  Managers are shared with the
        #: metascheduler — routing only restricts each arrival's offer
        #: competition; commits still serialize on the one grid.
        self._shard_managers = None
        if self.config.shards > 1:
            from .sharding import partition_domains

            partition = partition_domains(pool.domains(), self.config.shards)
            by_domain = {manager.domain: manager
                         for manager in self.metascheduler.managers}
            self._shard_managers = [
                tuple(by_domain[domain] for domain in group)
                for group in partition]

    # ------------------------------------------------------------------

    def run(self) -> list[JobOutcome]:
        """Run the whole scenario; returns per-job outcomes."""
        if self.config.busy_fraction > 0:
            self.grid.apply_background_load(
                self.streams.stream("background"),
                self.config.busy_fraction,
                self.config.horizon * 2,
                max_burst=self.config.background_burst)
        self.sim.process(self._arrivals())
        self.sim.run()
        self.outcomes.sort(key=lambda o: (o.submitted, o.job_id))
        return self.outcomes

    def _arrivals(self):
        rng = self.streams.stream("arrivals")
        index = 0
        while True:
            gap = float(rng.exponential(self.config.mean_interarrival))
            yield self.sim.timeout(gap)
            if self.sim.now >= self.config.horizon:
                return
            job = self._job_factory(self.streams.fork("jobs", index), index)
            stype = self.config.stypes[index % len(self.config.stypes)]
            self._admit(job, stype, index)
            index += 1

    def _admit(self, job: Job, stype: StrategyType, index: int = 0) -> None:
        now = int(self.sim.now)
        latency = self.config.plan_latency
        managers = None
        if self._shard_managers is not None:
            managers = self._shard_managers[index % len(self._shard_managers)]
        planned = self.metascheduler.plan_job(job, stype,
                                              release=now + latency,
                                              managers=managers)
        if latency:
            self._pending[job.job_id] = planned
            self.sim.process(self._deferred_commit(planned, now, latency))
        else:
            self._commit_admitted(planned, now)

    def _deferred_commit(self, planned, submitted: int, latency: int):
        """Commit a planned job ``plan_latency`` slots after planning.

        Other jobs' commitments can land in between; the metascheduler
        then falls back across supporting schedules and, if all were
        stolen, replans through the epoch-keyed plan cache."""
        yield self.sim.timeout(latency)
        self._commit_admitted(planned, submitted)

    def _commit_admitted(self, planned, submitted: int) -> None:
        self._pending.pop(planned.job.job_id, None)
        speculated = self._speculation_epochs.pop(planned.job.job_id, None)
        if speculated is not None and PERF.enabled:
            # Fresh means no further commitment drifted the environment
            # since the last speculative re-plan: a conflict replan now
            # hits the warmed cache exactly.
            if speculated == self._pool_epochs():
                PERF.incr("flow.speculative_fresh")
            else:
                PERF.incr("flow.speculative_wasted")
        record = self.metascheduler.commit_planned(planned)
        outcome = JobOutcome(job_id=planned.job.job_id, stype=planned.stype,
                             submitted=submitted, committed=record.committed,
                             reason=record.reason, charge=record.charge)
        self.outcomes.append(outcome)
        if record.committed:
            outcome.planned_makespan = record.chosen.outcome.makespan
            self.in_system.increment(self.sim.now)
            self.sim.process(self._execute(record, outcome))
        if self.config.speculate and self._pending:
            self._speculate_pending()

    def _pool_epochs(self) -> tuple[int, ...]:
        return self.grid.epoch_slice(self.pool.node_ids())

    def _speculate_pending(self) -> None:
        """Pre-plan the jobs waiting out their decision lag.

        Runs in zero simulated time right after a commitment (the only
        event that drifts epochs).  Jobs whose last speculation already
        targeted the current epochs are skipped — epoch drift, not the
        passage of events, is what invalidates a speculation.  The
        returned plans are deliberately dropped: this only warms the
        semantic plan cache (exact reuse/repair), so each job's real
        commit decision — and every outcome — is bit-identical with
        speculation on or off.
        """
        epochs = self._pool_epochs()
        for planned in list(self._pending.values()):
            job_id = planned.job.job_id
            if self._speculation_epochs.get(job_id) == epochs:
                continue
            self.metascheduler.plan_job(planned.job, planned.stype,
                                        planned.release,
                                        managers=planned.candidates)
            self._speculation_epochs[job_id] = epochs

    # ------------------------------------------------------------------

    def _execute(self, record: FlowRecord, outcome: JobOutcome):
        """Run every task of a committed job with actual durations."""
        strategy = record.strategy
        scheduled = strategy.scheduled_job
        distribution = record.chosen.distribution
        model = self._policy_models[strategy.spec.policy]
        ceiling = (record.chosen.level if self.config.actual_within_plan
                   else 1.0)
        actual_level = float(
            self.streams.fork(f"actual:{record.job_id}", 0)
            .uniform(0.0, ceiling))

        done: dict[str, object] = {
            task_id: self.sim.event() for task_id in scheduled.tasks}
        handles = []
        for task_id in scheduled.topological_order():
            handles.append(self.sim.process(self._run_task(
                scheduled, distribution, task_id, done, model,
                actual_level)))
        yield self.sim.all_of(handles)
        self.in_system.increment(self.sim.now, -1)
        outcome.actual_makespan = int(max(
            event.value for event in done.values()))
        if scheduled.deadline:
            outcome.met_deadline = (
                outcome.actual_makespan
                <= outcome.submitted + scheduled.deadline)

    def _run_task(self, scheduled: Job, distribution, task_id: str,
                  done: dict, model, actual_level: float):
        placement = distribution.placement(task_id)
        node = self.pool.node(placement.node_id)
        ready = float(placement.start)
        predecessors = scheduled.predecessors(task_id)
        if predecessors:
            yield self.sim.all_of([done[p] for p in predecessors])
            for pred in predecessors:
                transfer = scheduled.transfer_between(pred, task_id)
                pred_node = self.pool.node(
                    distribution.placement(pred).node_id)
                lag = model.time(transfer, pred_node, node)
                ready = max(ready, done[pred].value + lag)
        if self.sim.now < ready:
            yield self.sim.timeout(ready - self.sim.now)
        duration = scheduled.task(task_id).duration_on(
            node.performance, actual_level)
        run = yield self.agents[placement.node_id].execute(
            task_id, not_before=placement.start, duration=duration)
        done[task_id].succeed(run.end)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def admission_rate(self) -> float:
        """Fraction of arrivals that got a committed schedule."""
        if not self.outcomes:
            return 0.0
        committed = sum(1 for o in self.outcomes if o.committed)
        return committed / len(self.outcomes)

    def deadline_hit_rate(self) -> float:
        """Fraction of executed jobs that met their fixed time."""
        executed = [o for o in self.outcomes if o.met_deadline is not None]
        if not executed:
            return 0.0
        return sum(1 for o in executed if o.met_deadline) / len(executed)

    def node_utilization(self) -> dict[int, float]:
        """Busy fraction of every node over the elapsed simulation."""
        return {node_id: agent.utilization()
                for node_id, agent in self.agents.items()}

    def mean_concurrency(self) -> float:
        """Time-weighted mean number of jobs in the system."""
        return self.in_system.mean(until=self.sim.now)
