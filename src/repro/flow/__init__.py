"""Job-flow level: the hierarchical scheduling framework of Fig. 1.

Metascheduler → domain job managers → local batch systems, with quota
economics and the dynamic reallocation mechanism between supporting
schedules."""

from .economics import InsufficientBudget, UserAccount, VOEconomics
from .manager import JobManager
from .metascheduler import FlowRecord, Metascheduler
from .reallocation import (
    TimeToLiveResult,
    invalidates,
    strategy_time_to_live,
)
from .simulation import JobOutcome, OnlineConfig, OnlineSimulation
from .vo import FlowSummary, VirtualOrganization

__all__ = [
    "VOEconomics",
    "UserAccount",
    "InsufficientBudget",
    "JobManager",
    "Metascheduler",
    "FlowRecord",
    "invalidates",
    "strategy_time_to_live",
    "TimeToLiveResult",
    "VirtualOrganization",
    "FlowSummary",
    "OnlineSimulation",
    "OnlineConfig",
    "JobOutcome",
]
