"""The sharded batch engine: 10^5+ online arrivals, planned per shard.

The scaling lane of the job-flow layer.  Arrivals are grouped into
fixed-width *windows*; each window is planned shard-by-shard against a
frozen snapshot of the environment (the window's start state) and then
committed in arrival order against the live calendars, with the
metascheduler's reallocation discipline (variant fallback, then
bounded replans) resolving whatever drifted inside the window.  Shards
partition the VO's *nodes* (:func:`~repro.flow.sharding.
partition_domains` assigns whole domains), so two shards can never
race for a slot — cross-shard conflicts are structurally impossible,
and arbitration is only ever needed between same-window jobs of one
shard.

Two planning lanes produce bit-identical results (differential-tested
in ``tests/flow/test_sharded.py``):

* **in-process** (``workers=1``, the default and the benchmark lane) —
  shards are planned one after another inside the parent; concurrency
  is logical (each job only ever meets its own shard's domains, which
  is where the speedup at ``--shards N`` comes from);
* **process fan-out** (``workers>1``) — one
  :class:`~concurrent.futures.ProcessPoolExecutor` task per shard per
  window.  Workers regenerate their jobs from arrival indices (the
  fork-streams discipline: ``streams.fork("jobs", index)`` is
  reproducible across processes), plan against *replica* calendars,
  and ship strategies back; the parent merges in shard order and
  commits in arrival order, so any worker count is bit-identical to
  ``workers=1``.  Replicas sync through shared memory plus a delta
  log: read-only gap tables ship as zero-copy
  :class:`~repro.core.placement.SharedGapExport` views (rebuilt only
  when the per-shard log of committed placements outgrows
  ``sync_interval`` — the epoch change), and between exports workers
  catch up by replaying only the log entries past their applied
  offset, so the protocol is correct for any task→process assignment.

Worker-side perf counters are not dropped: each task returns a
:meth:`~repro.perf.registry.PerfRegistry.delta` snapshot that the
parent :meth:`~repro.perf.registry.PerfRegistry.merge`-s, so
``repro perf`` reports the whole fleet.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.job import Job
from ..core.resources import ProcessorNode, ResourcePool
from ..core.strategy import Strategy, StrategyType
from ..grid.environment import GridEnvironment
from ..perf import PERF
from ..sim import RandomStreams
from .sharding import ShardPlanner, partition_domains, replica_calendars

__all__ = ["ShardedConfig", "ShardedOutcome", "ShardedSimulation"]


@dataclass(frozen=True)
class ShardedConfig:
    """Parameters of a sharded batch run."""

    #: Total arrivals to plan and commit.
    jobs: int = 1000
    #: Mean inter-arrival gap (slots); at 10^5 jobs this is what sets
    #: the schedule span, so keep it small.
    mean_interarrival: float = 0.05
    #: Slots per commit window.  All jobs arriving inside one window
    #: are planned against the window's start state with release at the
    #: window end, then committed in arrival order.
    window: int = 4
    #: Domain shards (the semantic knob: each arrival is planned only
    #: against its shard's domains).  1 = the whole VO per job.
    shards: int = 1
    #: Planning processes (the transport knob: any value is
    #: bit-identical to 1).  1 = in-process lane, no fan-out.
    workers: int = 1
    #: Background utilization pre-loaded before the run.
    busy_fraction: float = 0.2
    background_burst: int = 6
    #: Background horizon; None derives one covering the arrival span.
    horizon: Optional[int] = None
    #: Strategy families assigned round-robin to arrivals.  S1/S2 by
    #: default: their cache hits rebind in O(variants), while S3's
    #: rebind rebuilds the aggregated job — poison at this scale.
    stypes: Tuple[StrategyType, ...] = (StrategyType.S1, StrategyType.S2)
    #: Replans allowed when every variant of a same-window neighbour's
    #: plan was stolen at commit time (intra-shard arbitration).
    conflict_retries: int = 1
    #: Committed placements a shard's delta log may accumulate before
    #: the parent re-exports its gap tables to shared memory
    #: (worker lane only).
    sync_interval: int = 2048

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.window < 1:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if not self.stypes:
            raise ValueError("at least one strategy family is required")
        if self.conflict_retries < 0:
            raise ValueError(
                f"conflict_retries must be >= 0, got {self.conflict_retries}")
        if self.sync_interval < 1:
            raise ValueError(
                f"sync_interval must be positive, got {self.sync_interval}")
        if self.horizon is not None and self.horizon < 1:
            raise ValueError(f"horizon must be positive, got {self.horizon}")


@dataclass
class ShardedOutcome:
    """Accounting for one arrival through the sharded engine."""

    job_id: str
    index: int
    stype: StrategyType
    shard: int
    committed: bool
    #: "", or why not: "inadmissible" / "conflict".
    reason: str = ""
    domain: Optional[str] = None
    cost: Optional[float] = None
    makespan: Optional[int] = None
    #: Variant fallbacks tried at commit time (reallocation mechanism).
    reallocations: int = 0
    #: Full replans after every variant was stolen (arbitration).
    replans: int = 0


# ----------------------------------------------------------------------
# Worker side (module-level so the pool can pickle it)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker process needs to mirror the parent's shards."""

    nodes: Tuple[ProcessorNode, ...]
    partition: Tuple[Tuple[str, ...], ...]
    seed: int
    stypes: Tuple[StrategyType, ...]
    job_factory: Optional[Callable[..., Job]]


class _ShardReplica:
    """A worker's mirror of one shard: planner plus replica calendars."""

    def __init__(self, planner: ShardPlanner) -> None:
        self.planner = planner
        self.calendars: Dict[int, Any] = {}
        #: Which export generation the calendars were rebuilt from
        #: (-1: never synced).
        self.export_generation = -1
        #: Absolute delta-log offset already applied on top.
        self.applied = 0


#: Per-process worker state, set up once by the pool initializer.
_WORKER_STATE: dict[str, Any] = {}


def _init_shard_worker(spec: _WorkerSpec) -> None:
    """Process-pool initializer: build the pool and empty replicas."""
    pool = ResourcePool(list(spec.nodes))
    # Written once by the pool initializer before any task runs, and
    # only ever read within this process — the sanctioned per-process
    # worker-state pattern.
    _WORKER_STATE["spec"] = spec  # lint: shared-state — see above
    _WORKER_STATE["pool"] = pool  # lint: shared-state — see above
    _WORKER_STATE["replicas"] = {}  # lint: shared-state — see above


def _sync_replica(shard_id: int, sync: tuple) -> _ShardReplica:
    """Bring this process's replica of one shard up to date.

    ``sync`` is ``(generation, handle, export_offset, pending,
    total_offset)``: a replica on an older export generation rebuilds
    its calendars from the shared-memory gap tables (bulk O(n) loads
    over zero-copy views, closed right after), then every replica
    replays just the ``pending`` delta entries past its own applied
    offset.  Any task→process assignment converges to the same
    calendar content — the parent's state as of the window start.
    """
    from ..core.placement import attach_gap_tables

    generation, handle, export_offset, pending, total_offset = sync
    replicas: Dict[int, _ShardReplica] = _WORKER_STATE["replicas"]
    replica = replicas.get(shard_id)
    if replica is None:
        spec: _WorkerSpec = _WORKER_STATE["spec"]
        replica = _ShardReplica(ShardPlanner(
            shard_id, spec.partition[shard_id], _WORKER_STATE["pool"]))
        replicas[shard_id] = replica
    if replica.export_generation < generation:
        attached = attach_gap_tables(handle)
        try:
            replica.calendars = replica_calendars(attached.tables)
        finally:
            attached.close()
        replica.export_generation = generation
        replica.applied = export_offset
    for node_id, start, end in pending[replica.applied - export_offset:]:
        replica.calendars[node_id].reserve(start, end, tag="replica")
    replica.applied = total_offset
    return replica


def _plan_shard_window(task: tuple) -> tuple:
    """One worker task: plan a window's slice of one shard's jobs.

    Returns ``(shard_id, offers, perf_delta)`` where ``offers`` is
    ``[(index, domain, strategy-or-None), ...]`` in arrival order.
    Jobs are regenerated from their indices through the same fork
    discipline the parent uses, so they are bit-identical.
    """
    shard_id, release, indices, sync, collect = task
    replica = _sync_replica(shard_id, sync)
    spec: _WorkerSpec = _WORKER_STATE["spec"]
    factory = spec.job_factory
    if factory is None:
        from ..workload.generator import generate_job as factory

    base = PERF.snapshot() if collect else None
    was_enabled = PERF.enabled
    if collect:
        PERF.enable()
    try:
        streams = RandomStreams(spec.seed)
        offers: List[Tuple[int, Optional[str], Optional[Strategy]]] = []
        for index in indices:
            job = factory(streams.fork("jobs", index), index)
            stype = spec.stypes[index % len(spec.stypes)]
            offer = replica.planner.plan(job, stype, release,
                                         replica.calendars)
            if offer is None:
                offers.append((index, None, None))
            else:
                manager, strategy = offer
                offers.append((index, manager.domain, strategy))
    finally:
        if collect:
            PERF.enabled = was_enabled
    delta = PERF.delta(base) if collect else None
    return shard_id, offers, delta


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class ShardedSimulation:
    """Windowed plan/commit of a large arrival stream over shards."""

    def __init__(self, pool: ResourcePool, seed: int = 0,
                 config: Optional[ShardedConfig] = None,
                 job_factory: Optional[Callable[..., Job]] = None,
                 policy_models=None, cost_model=None):
        """``job_factory(rng, index) -> Job`` must be picklable when
        ``workers > 1`` (see :class:`~repro.workload.generator.
        TemplateWorkload`); None uses the Section 4 generator."""
        self.pool = pool
        self.seed = seed
        self.config = config or ShardedConfig()
        self.streams = RandomStreams(seed)
        self.grid = GridEnvironment(pool)
        self.partition = partition_domains(pool.domains(),
                                           self.config.shards)
        self.planners = [
            ShardPlanner(shard_id, group, pool, policy_models, cost_model)
            for shard_id, group in enumerate(self.partition)]
        self._shard_of_node: Dict[int, int] = {
            node_id: planner.shard_id
            for planner in self.planners for node_id in planner.node_ids}
        self._job_factory = job_factory
        self.outcomes: List[ShardedOutcome] = []
        self.windows = 0
        # Worker-lane sync state, all per shard: the append-only log of
        # committed placements, the live export (generation, handle,
        # log offset at export), and the export objects for cleanup.
        self._delta_log: List[List[Tuple[int, int, int]]] = [
            [] for _ in self.planners]
        self._export_state: List[Optional[Tuple[int, Any, int]]] = [
            None for _ in self.planners]
        self._live_exports: List[Any] = [None for _ in self.planners]
        self._executor = None

    # ------------------------------------------------------------------

    def _job(self, index: int) -> Tuple[Job, StrategyType]:
        factory = self._job_factory
        if factory is None:
            from ..workload.generator import generate_job as factory
        job = factory(self.streams.fork("jobs", index), index)
        stype = self.config.stypes[index % len(self.config.stypes)]
        return job, stype

    def _arrival_windows(self) -> List[Tuple[int, List[int]]]:
        """Arrival indices grouped by window, both in ascending order."""
        rng = self.streams.stream("arrivals")
        window = self.config.window
        grouped: Dict[int, List[int]] = {}
        clock = 0.0
        for index in range(self.config.jobs):
            clock += float(rng.exponential(self.config.mean_interarrival))
            grouped.setdefault(int(clock // window), []).append(index)
        return sorted(grouped.items())

    def _derived_horizon(self, windows: List[Tuple[int, List[int]]]) -> int:
        if self.config.horizon is not None:
            return self.config.horizon
        last = windows[-1][0] + 1 if windows else 1
        return max(64, 2 * last * self.config.window)

    def run(self) -> List[ShardedOutcome]:
        """Plan and commit every arrival; returns outcomes in order."""
        config = self.config
        windows = self._arrival_windows()
        if config.busy_fraction > 0:
            self.grid.apply_background_load(
                self.streams.stream("background"), config.busy_fraction,
                self._derived_horizon(windows),
                max_burst=config.background_burst)
        self.windows = len(windows)
        try:
            if config.workers > 1:
                self._start_workers()
            for window_index, indices in windows:
                release = (window_index + 1) * config.window
                offers = self._plan_window(indices, release)
                self._commit_window(indices, release, offers)
        finally:
            self._teardown_workers()
        return self.outcomes

    # ------------------------------------------------------------------
    # Plan phase
    # ------------------------------------------------------------------

    def _shard_of(self, index: int) -> int:
        return index % len(self.planners)

    def _plan_window(self, indices: List[int], release: int
                     ) -> Dict[int, Tuple[Optional[str],
                                          Optional[Strategy], Job]]:
        """Plan a window's jobs, each against its own shard only.

        Every job is planned against the *window start* state — the
        frozen snapshot all shards share — so planning is a pure
        function of (window state, shard, job) and the lanes can only
        differ in transport, not results.
        """
        by_shard: Dict[int, List[int]] = {}
        for index in indices:
            by_shard.setdefault(self._shard_of(index), []).append(index)
        offers: Dict[int, Tuple[Optional[str], Optional[Strategy], Job]] = {}
        if self._executor is None:
            snapshot = self.grid.snapshot()
            for shard_id in sorted(by_shard):
                planner = self.planners[shard_id]
                for index in by_shard[shard_id]:
                    job, stype = self._job(index)
                    offer = planner.plan(job, stype, release, snapshot)
                    if offer is None:
                        offers[index] = (None, None, job)
                    else:
                        offers[index] = (offer[0].domain, offer[1], job)
            return offers
        collect = PERF.enabled
        tasks = [
            (shard_id, release, tuple(by_shard[shard_id]),
             self._sync_payload(shard_id), collect)
            for shard_id in sorted(by_shard)]
        for shard_id, shard_offers, delta in self._executor.map(
                _plan_shard_window, tasks):
            if delta is not None:
                PERF.merge(delta)
            for index, domain, strategy in shard_offers:
                job, _ = self._job(index)
                offers[index] = (domain, strategy, job)
        return offers

    # ------------------------------------------------------------------
    # Worker-lane sync
    # ------------------------------------------------------------------

    def _sync_payload(self, shard_id: int) -> tuple:
        """The (generation, handle, offsets, pending) for one shard.

        Re-exports the shard's gap tables to shared memory when its
        delta log outgrew ``sync_interval`` since the live export —
        the epoch change; otherwise ships only the log tail.  Called
        between windows, when no task is in flight, so a superseded
        export can be closed immediately.
        """
        from ..core.placement import SharedGapExport

        log = self._delta_log[shard_id]
        state = self._export_state[shard_id]
        if state is None or len(log) - state[2] > self.config.sync_interval:
            generation = 0 if state is None else state[0] + 1
            planner = self.planners[shard_id]
            export = SharedGapExport({
                node_id: self.grid.calendars[node_id].gap_table()
                for node_id in planner.node_ids})
            superseded = self._live_exports[shard_id]
            if superseded is not None:
                superseded.close()
            self._live_exports[shard_id] = export
            state = (generation, export.handle, len(log))
            self._export_state[shard_id] = state
        generation, handle, export_offset = state
        return (generation, handle, export_offset,
                tuple(log[export_offset:]), len(log))

    def _start_workers(self) -> None:
        from concurrent.futures import ProcessPoolExecutor

        spec = _WorkerSpec(
            nodes=tuple(self.pool.nodes),
            partition=tuple(self.partition),
            seed=self.seed,
            stypes=self.config.stypes,
            job_factory=self._job_factory)
        self._executor = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_shard_worker, initargs=(spec,))

    def _teardown_workers(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        for shard_id, export in enumerate(self._live_exports):
            if export is not None:
                export.close()
                self._live_exports[shard_id] = None
        self._export_state = [None for _ in self.planners]

    # ------------------------------------------------------------------
    # Commit phase (the merge/arbitration seam)
    # ------------------------------------------------------------------

    def _commit_window(self, indices: List[int], release: int,
                       offers: Dict[int, Tuple[Optional[str],
                                               Optional[Strategy], Job]]
                       ) -> None:
        """Commit a planned window in arrival order against live state.

        The in-order merge: identical regardless of which lane (or how
        many workers) produced the offers.  Same-window neighbours of
        one shard may have planned overlapping slots; the reallocation
        discipline resolves that — variant fallback first, then up to
        ``conflict_retries`` live replans on the job's own shard.
        Cross-shard conflicts cannot happen (shards own disjoint
        nodes).
        """
        for index in indices:
            domain, strategy, job = offers[index]
            shard_id = self._shard_of(index)
            stype = self.config.stypes[index % len(self.config.stypes)]
            outcome = ShardedOutcome(
                job_id=job.job_id, index=index, stype=stype,
                shard=shard_id, committed=False)
            if strategy is None:
                outcome.reason = "inadmissible"
            else:
                self._commit_offer(outcome, job, stype, shard_id, domain,
                                   strategy, release)
            self.outcomes.append(outcome)

    def _commit_offer(self, outcome: ShardedOutcome, job: Job,
                      stype: StrategyType, shard_id: int,
                      domain: Optional[str], strategy: Strategy,
                      release: int) -> None:
        """Metascheduler commit discipline against the live calendars."""
        while True:
            variants = sorted(
                strategy.admissible_schedules(),
                key=lambda s: (s.outcome.cost, s.outcome.makespan))
            chosen = None
            for variant in variants:
                if self.grid.can_commit(variant.distribution):
                    chosen = variant
                    break
                outcome.reallocations += 1
            if chosen is not None:
                self.grid.commit_distribution(chosen.distribution)
                log = self._delta_log[shard_id]
                for placement in chosen.distribution:
                    log.append((placement.node_id, placement.start,
                                placement.end))
                outcome.committed = True
                outcome.domain = domain
                outcome.cost = chosen.outcome.cost
                outcome.makespan = chosen.outcome.makespan
                return
            if outcome.replans >= self.config.conflict_retries:
                outcome.reason = "conflict"
                outcome.domain = domain
                return
            # Arbitration: a same-window neighbour on this shard stole
            # every variant; replan at the live state, same shard only.
            outcome.replans += 1
            offer = self.planners[shard_id].plan(job, stype, release,
                                                 self.grid.snapshot())
            if offer is None:
                outcome.reason = "inadmissible"
                outcome.domain = None
                return
            domain, strategy = offer[0].domain, offer[1]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def admission_rate(self) -> float:
        """Fraction of arrivals that got a committed schedule."""
        if not self.outcomes:
            return 0.0
        committed = sum(1 for o in self.outcomes if o.committed)
        return committed / len(self.outcomes)

    def digest(self) -> str:
        """A content hash of every schedule and outcome of the run.

        Covers each node's final reservation list (start, end, tag —
        the committed schedules themselves) and every per-job outcome,
        so two runs with equal digests placed every task identically.
        This is the equality the differential tests assert across
        worker counts and lanes.
        """
        hasher = hashlib.sha256()
        for node_id in sorted(self.grid.calendars):
            hasher.update(f"n{node_id}".encode())
            for r in self.grid.calendars[node_id].reservations:
                hasher.update(f":{r.start},{r.end},{r.tag}".encode())
        for o in self.outcomes:
            hasher.update(
                f"|{o.index},{o.job_id},{o.shard},{int(o.committed)},"
                f"{o.domain},{o.cost},{o.makespan},{o.reason},"
                f"{o.reallocations},{o.replans}".encode())
        return hasher.hexdigest()

    def stats(self, counters: Optional[Mapping[str, int]] = None
              ) -> Dict[str, Dict[str, object]]:
        """Merged per-cache statistics over every shard's context."""
        from ..core.context import merged_context_stats

        return merged_context_stats(
            [planner.context for planner in self.planners], counters)
