"""The metascheduler: top of the Fig. 1 hierarchy.

Users submit compound jobs; the metascheduler groups them into flows by
strategy type, routes each job to the domain whose job manager offers
the best admissible strategy, commits the chosen supporting schedule
into the Grid environment, and — when the environment changed between
planning and commitment — falls back to the strategy's other supporting
schedules (the dynamic reallocation mechanism) before re-planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.context import SchedulingContext
from ..core.job import Job
from ..core.strategy import Strategy, StrategyType, SupportingSchedule
from ..grid.environment import GridEnvironment
from ..local.manager import LocalResourceManager, RequestRefused
from ..local.request import ResourceRequest
from .economics import InsufficientBudget, VOEconomics
from .manager import JobManager
from .sharding import plan_with_cache

__all__ = ["FlowRecord", "PlannedDispatch", "Metascheduler"]


@dataclass
class FlowRecord:
    """Outcome of dispatching one job through the framework."""

    job_id: str
    stype: StrategyType
    #: Domain that won the job (None when rejected everywhere).
    domain: Optional[str]
    strategy: Optional[Strategy]
    #: The supporting schedule actually committed.
    chosen: Optional[SupportingSchedule]
    committed: bool
    #: Supporting-schedule switches needed at commit time (reallocation).
    reallocations: int = 0
    charge: Optional[float] = None
    #: Why the job was not committed ("inadmissible", "conflict",
    #: "budget"); empty when committed.
    reason: str = ""


@dataclass
class PlannedDispatch:
    """Phase-one output of a two-phase dispatch.

    Produced by :meth:`Metascheduler.plan_job`, consumed by
    :meth:`Metascheduler.commit_planned` — possibly at a later
    simulated instant (planning latency).  ``manager``/``strategy``
    are None when no domain offered an admissible strategy."""

    job: Job
    stype: StrategyType
    release: int
    manager: Optional["JobManager"]
    strategy: Optional[Strategy]
    #: The manager subset the job was planned against (None = the whole
    #: VO).  Sharded lanes route each job to its shard's managers;
    #: conflict replans must compete over the same subset, or a retry
    #: could silently widen a job's shard.
    candidates: Optional[tuple["JobManager", ...]] = None


class Metascheduler:
    """Routes job flows over the domain managers of one VO.

    ``conflict_retries`` (default 0 — the historical behaviour) allows
    a job whose every supporting schedule was stolen between planning
    and commitment to be re-planned against the drifted environment up
    to that many times.  Replanning consults the epoch-keyed plan cache
    first, so managers whose domain calendars did not change reuse the
    already-generated strategy outright.
    """

    def __init__(self, grid: GridEnvironment,
                 policy_models=None, cost_model=None,
                 economics: Optional[VOEconomics] = None,
                 use_local_managers: bool = False,
                 conflict_retries: int = 0,
                 context: Optional[SchedulingContext] = None):
        self.grid = grid
        self.economics = economics
        if conflict_retries < 0:
            raise ValueError(
                f"conflict_retries must be >= 0, got {conflict_retries}")
        self.conflict_retries = conflict_retries
        #: Session cache layer shared by every domain manager's strategy
        #: generator and by the plan cache below (``context.plans``): a
        #: two-tier semantic cache — skeletons keyed (job shape hash,
        #: family, domain), concrete variants keyed (structural hash,
        #: release, domain epoch slice).  An exact variant hit
        #: guarantees byte-identical generation inputs (strategy
        #: generation is deterministic, so reuse is exact); a stale
        #: same-structure variant instead seeds an incremental repair.
        #: Bounded by per-entry LRU eviction, so a flood of one-shot
        #: keys can no longer wipe hot entries wholesale.
        self.context = context if context is not None else SchedulingContext()
        self.managers: list[JobManager] = [
            JobManager(domain, grid.pool, policy_models, cost_model,
                       context=self.context)
            for domain in grid.pool.domains()
        ]
        #: When True, commitments go through each domain's local
        #: resource manager as explicit resource requests (the full
        #: Fig. 1 hierarchy) instead of booking calendars directly.
        #: The local managers share the grid's calendars, so both paths
        #: see the same environment state.
        self.use_local_managers = use_local_managers
        self.local_managers: dict[str, LocalResourceManager] = {}
        if use_local_managers:
            for manager in self.managers:
                calendars = {node.node_id: grid.calendars[node.node_id]
                             for node in manager.pool}
                self.local_managers[manager.domain] = LocalResourceManager(
                    manager.pool, calendars)
        #: Pending (job, strategy type) pairs grouped into flows.
        self.flows: dict[StrategyType, list[Job]] = {
            stype: [] for stype in StrategyType}
        self.records: list[FlowRecord] = []

    # ------------------------------------------------------------------

    def submit(self, job: Job, stype: StrategyType) -> None:
        """Add a job to the flow of the given strategy type."""
        self.flows[stype].append(job)

    def pending(self) -> list[tuple[Job, StrategyType]]:
        """Jobs awaiting dispatch, in service order.

        Flows interleave fairly (round-robin over types); inside the
        batch, users bidding a higher surge factor go first (the
        dynamic-priority economics of Section 5).
        """
        queue: list[tuple[Job, StrategyType]] = []
        cursors = {stype: 0 for stype in self.flows}
        progressed = True
        while progressed:
            progressed = False
            for stype in StrategyType:
                flow = self.flows[stype]
                if cursors[stype] < len(flow):
                    queue.append((flow[cursors[stype]], stype))
                    cursors[stype] += 1
                    progressed = True
        if self.economics is not None:
            queue.sort(key=lambda item: -self._priority(item[0]))
        return queue

    def _priority(self, job: Job) -> float:
        if (self.economics is not None
                and self.economics.has_account(job.owner)):
            return self.economics.priority_of(job.owner)
        return 1.0

    # ------------------------------------------------------------------

    def dispatch(self, release: int = 0) -> list[FlowRecord]:
        """Plan and commit every pending job; returns their records."""
        batch = self.pending()
        for stype in self.flows:
            self.flows[stype] = []
        records = [self._dispatch_one(job, stype, release)
                   for job, stype in batch]
        self.records.extend(records)
        return records

    def _dispatch_one(self, job: Job, stype: StrategyType,
                      release: int) -> FlowRecord:
        return self._finish(self.plan_job(job, stype, release))

    def _plan_for(self, manager: JobManager, job: Job, stype: StrategyType,
                  release: int, calendars) -> Strategy:
        """Plan through the graded semantic plan cache.

        Delegates to :func:`repro.flow.sharding.plan_with_cache` — the
        one implementation of the exact-hit → warm-repair →
        coarse-seed → cold-miss ladder shared with the shard planners.
        The grid stays the epoch authority here (snapshot calendars
        share the same content versions, so either source is exact).
        """
        epochs = self.grid.epoch_slice(manager.pool.node_ids())
        return plan_with_cache(manager, job, stype, release, calendars,
                               self.context.plans, epochs=epochs)

    def plan_job(self, job: Job, stype: StrategyType, release: int,
                 managers: Optional[Sequence[JobManager]] = None
                 ) -> PlannedDispatch:
        """Phase one of dispatch: plan on every domain, pick the cheapest.

        Nothing is booked; the returned :class:`PlannedDispatch` can be
        committed later with :meth:`commit_planned`.  Plans go through
        the epoch-keyed cache, so re-planning the same job against
        unchanged domain calendars is free.  ``managers`` restricts the
        offer competition to a subset (a shard's managers — the DES
        lane's in-process sharding); the default competes over the
        whole VO, and the restriction is remembered on the dispatch so
        conflict replans stay inside the same shard.
        """
        calendars = self.grid.snapshot()
        candidates = self.managers if managers is None else list(managers)
        best: Optional[tuple[JobManager, Strategy]] = None
        best_cost = float("inf")
        for manager in candidates:
            strategy = self._plan_for(manager, job, stype, release,
                                      calendars)
            chosen = strategy.best_schedule()
            if chosen is None:
                continue
            if chosen.outcome.cost < best_cost:
                best = (manager, strategy)
                best_cost = chosen.outcome.cost
        restriction = None if managers is None else tuple(managers)
        if best is None:
            return PlannedDispatch(job, stype, release, None, None,
                                   candidates=restriction)
        return PlannedDispatch(job, stype, release, best[0], best[1],
                               candidates=restriction)

    def commit_planned(self, planned: PlannedDispatch) -> FlowRecord:
        """Phase two of dispatch: commit a previously planned job.

        When the environment drifted between planning and commitment the
        usual fallbacks apply — first across the strategy's supporting
        schedules (reallocation), then up to ``conflict_retries``
        replans at the *original* release.  Replans consult the plan
        cache, so only domains whose calendars changed re-generate.
        The outcome is appended to :attr:`records`.
        """
        record = self._finish(planned)
        self.records.append(record)
        return record

    def _finish(self, planned: PlannedDispatch) -> FlowRecord:
        job, stype = planned.job, planned.stype
        if planned.manager is None:
            return FlowRecord(job_id=job.job_id, stype=stype, domain=None,
                              strategy=None, chosen=None, committed=False,
                              reason="inadmissible")
        record = self._commit(job, stype, planned.manager, planned.strategy)
        retries = 0
        while record.reason == "conflict" and retries < self.conflict_retries:
            # Every variant was stolen between planning and commitment;
            # re-plan against the drifted calendars.  Managers whose
            # domains are untouched hit the plan cache exactly and only
            # re-offer; the drifted domain repairs its own stale plan —
            # the entry stored when this job was first planned seeds a
            # warm regeneration instead of a cold replan.
            retries += 1
            replanned = self.plan_job(job, stype, planned.release,
                                      managers=planned.candidates)
            if replanned.manager is None:
                return FlowRecord(job_id=job.job_id, stype=stype,
                                  domain=None, strategy=None, chosen=None,
                                  committed=False, reason="inadmissible")
            record = self._commit(job, stype, replanned.manager,
                                  replanned.strategy)
        return record

    def _commit(self, job: Job, stype: StrategyType, manager: JobManager,
                strategy: Strategy) -> FlowRecord:
        """Commit the cheapest variant that still fits the environment."""
        variants = sorted(strategy.admissible_schedules(),
                          key=lambda s: (s.outcome.cost, s.outcome.makespan))
        reallocations = 0
        for variant in variants:
            if not self.grid.can_commit(variant.distribution):
                # The environment drifted since planning: fall back to
                # the next supporting schedule (reallocation mechanism).
                reallocations += 1
                continue
            charge = None
            if (self.economics is not None
                    and self.economics.has_account(job.owner)):
                try:
                    charge = self.economics.charge(
                        job.owner, variant.distribution,
                        strategy.scheduled_job, manager.pool)
                except InsufficientBudget:
                    return FlowRecord(
                        job_id=job.job_id, stype=stype,
                        domain=manager.domain, strategy=strategy,
                        chosen=None, committed=False,
                        reallocations=reallocations, reason="budget")
            self._book(job, manager.domain, variant)
            return FlowRecord(
                job_id=job.job_id, stype=stype, domain=manager.domain,
                strategy=strategy, chosen=variant, committed=True,
                reallocations=reallocations, charge=charge)
        return FlowRecord(
            job_id=job.job_id, stype=stype, domain=manager.domain,
            strategy=strategy, chosen=None, committed=False,
            reallocations=reallocations, reason="conflict")

    def _book(self, job: Job, domain: str,
              variant: SupportingSchedule) -> None:
        """Reserve a checked-available variant, via the domain's local
        manager (full Fig. 1 hierarchy) or directly on the calendars."""
        if not self.use_local_managers:
            self.grid.commit_distribution(variant.distribution)
            return
        requests = [
            ResourceRequest.from_placement(job.job_id, placement,
                                           owner=job.owner)
            for placement in variant.distribution
        ]
        # can_commit passed just above and dispatch is sequential, so
        # the grants cannot be refused unless the shared-calendar
        # invariant broke.
        try:
            grants = self.local_managers[domain].handle_all(requests)
        except RequestRefused as refusal:  # pragma: no cover - invariant
            raise RuntimeError(
                f"local manager refused a slot can_commit approved: "
                f"{refusal}") from refusal
        assert len(grants) == len(requests)
