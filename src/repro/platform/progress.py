"""Streaming progress for grid runs: cells done, cache hits, ETA.

The grid runner emits one :class:`ProgressEvent` per finished cell
(cached or computed) through whatever callback it was given; the
:class:`StudyReporter` here is the stock consumer — it keeps the event
trail for tests and, when ``echo`` is set, renders a one-line ticker
for the ``repro study run`` CLI.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import IO, Optional

__all__ = ["ProgressEvent", "StudyReporter"]


@dataclass(frozen=True)
class ProgressEvent:
    """One cell finished (served from the store or freshly computed)."""

    study: str
    done: int
    total: int
    computed: int
    cached: int
    corrupt: int
    elapsed_seconds: float
    #: Estimated seconds remaining, extrapolated from the mean cost of
    #: *computed* cells only (cached cells are ~free and would skew the
    #: estimate toward zero); None until the first cell computes.
    eta_seconds: Optional[float]
    coords: "tuple[tuple[str, object], ...]" = ()

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def describe(self) -> str:
        eta = ("--" if self.eta_seconds is None
               else f"{self.eta_seconds:5.1f}s")
        return (f"[{self.study}] {self.done}/{self.total} cells"
                f" ({self.cached} cached, {self.computed} computed,"
                f" {self.corrupt} corrupt) eta {eta}")


@dataclass
class StudyReporter:
    """Collects :class:`ProgressEvent` objects; optionally echoes them.

    ``echo`` writes a carriage-return ticker to ``stream`` (stderr by
    default) so long grid runs show live progress without flooding
    scrollback; the final event gets a real newline.
    """

    echo: bool = False
    stream: Optional[IO[str]] = None
    events: "list[ProgressEvent]" = field(default_factory=list)

    def __call__(self, event: ProgressEvent) -> None:
        self.events.append(event)
        if not self.echo:
            return
        stream = self.stream if self.stream is not None else sys.stderr
        end = "\n" if event.done >= event.total else "\r"
        stream.write(event.describe() + end)
        stream.flush()

    @property
    def last(self) -> Optional[ProgressEvent]:
        return self.events[-1] if self.events else None
