"""The experiment platform: declarative study grids with resumable,
content-addressed results.

The paper's evidence is a grid of simulation studies (workload ×
strategy family × local policy × seed); this package turns that grid
into a first-class object instead of a hand-rolled loop per script:

* :class:`~repro.platform.grid.StudyGrid` — a declarative cell grid
  with an async :meth:`~repro.platform.grid.StudyGrid.run` pipeline
  that fans cells out over a process pool (the same fork-stream
  seeding seam the PR-2 study runner introduced), streams progress,
  and merges results in cell order — bit-identical for any worker
  count.
* :class:`~repro.platform.store.ResultStore` — a content-addressed,
  corruption-detecting on-disk cache: each cell is keyed by a stable
  hash of its resolved config plus the study's schema version, so
  re-runs skip already-computed cells and a changed parameter
  recomputes exactly the affected slice.
* :class:`~repro.platform.results.Results` — typed per-cell rows,
  queryable (``filter`` / ``group_by``) and exportable (CSV / Parquet /
  JSON) under a versioned schema.
* :func:`~repro.platform.pool.fanout_map` — the one process-pool
  fan-out + in-order-merge helper shared by the grid runner and any
  remaining direct study lanes.

Experiment modules declare grids (see ``repro.experiments``) and the
``repro study`` CLI drives them (``run`` / ``ls`` / ``export`` /
``clean``, ``--resume``, ``--workers``, ``--format``).
"""

from .grid import GridCell, StudyGrid, run_grid
from .pool import effective_workers, fanout_map
from .progress import ProgressEvent, StudyReporter
from .results import RESULTS_SCHEMA_VERSION, Results
from .store import STORE_SCHEMA_VERSION, ResultStore, content_key

__all__ = [
    "StudyGrid",
    "GridCell",
    "run_grid",
    "Results",
    "RESULTS_SCHEMA_VERSION",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "content_key",
    "ProgressEvent",
    "StudyReporter",
    "effective_workers",
    "fanout_map",
]
