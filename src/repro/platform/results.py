"""Typed, queryable study results with a versioned export schema.

A :class:`Results` object is what :meth:`StudyGrid.run` returns: one
row per grid cell, each row a flat dict whose leading keys are the grid
coordinates and whose remaining keys are the cell payload.  Rows are
plain JSON values (the grid runner normalizes payloads through the
store's canonical encoding even on cold runs), so a Results built from
fresh computation is bit-identical to one assembled from cached cells.

Queries stay deliberately small — ``filter`` / ``group_by`` /
``to_table`` cover what the experiment modules and CLI need without
growing a dataframe library.  Exports (CSV / Parquet / JSON) carry
``schema_version`` so downstream diffs can tell a layout change from a
result change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

__all__ = ["RESULTS_SCHEMA_VERSION", "Results"]

#: Bump when the exported row layout changes incompatibly (column
#: semantics, value encodings).  Stamped into every export.
RESULTS_SCHEMA_VERSION = 1


def _hashable(value: Any) -> Any:
    """A hashable stand-in for a JSON value (lists/dicts → tuples)."""
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple((key, _hashable(item))
                     for key, item in value.items())
    return value


@dataclass
class Results:
    """Per-cell rows from a study grid run.

    ``columns`` fixes the export order (coordinates first, then payload
    fields); rows may omit trailing payload fields, which export as
    empty.  ``meta`` carries run bookkeeping — total / computed /
    cached / corrupt cell counts — which the resume smoke test and the
    CLI summary line both read.
    """

    study: str
    columns: "tuple[str, ...]"
    rows: "list[dict[str, Any]]" = field(default_factory=list)
    meta: "dict[str, Any]" = field(default_factory=dict)
    schema_version: int = RESULTS_SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> "Iterator[dict[str, Any]]":
        return iter(self.rows)

    def __getitem__(self, index: int) -> "dict[str, Any]":
        return self.rows[index]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def filter(self,
               predicate: "Optional[Callable[[Mapping[str, Any]], bool]]"
               = None,
               **equals: Any) -> "Results":
        """Rows matching the predicate and/or ``column=value`` pairs."""
        def keep(row: "Mapping[str, Any]") -> bool:
            if predicate is not None and not predicate(row):
                return False
            return all(row.get(col) == value
                       for col, value in equals.items())

        return Results(study=self.study, columns=self.columns,
                       rows=[dict(row) for row in self.rows if keep(row)],
                       meta=dict(self.meta),
                       schema_version=self.schema_version)

    def group_by(self, *cols: str) -> "dict[tuple[Any, ...], Results]":
        """Split rows into sub-Results keyed by the named columns,
        preserving first-seen group order (which is cell order).

        List- and dict-valued columns (JSON-normalized coordinates)
        key as tuples, so any exported column can group.
        """
        groups: "dict[tuple[Any, ...], Results]" = {}
        for row in self.rows:
            key = tuple(_hashable(row.get(col)) for col in cols)
            bucket = groups.get(key)
            if bucket is None:
                bucket = Results(study=self.study, columns=self.columns,
                                 meta=dict(self.meta),
                                 schema_version=self.schema_version)
                groups[key] = bucket
            bucket.rows.append(dict(row))
        return groups

    def column(self, name: str) -> "list[Any]":
        """Every row's value for one column."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # Conversions and exports
    # ------------------------------------------------------------------

    def to_table(self, experiment_id: str = "", title: str = "",
                 columns: "Optional[Sequence[str]]" = None) -> Any:
        """As an :class:`~repro.experiments.common.ExperimentTable`.

        Imported lazily: ``repro.io`` pulls in ``experiments.common``
        at module scope, so importing it here at module scope would
        close an import cycle through the experiments package.
        """
        from ..experiments.common import ExperimentTable

        cols = tuple(columns) if columns is not None else self.columns
        table = ExperimentTable(
            experiment_id=experiment_id or self.study,
            title=title or f"study grid: {self.study}",
            columns=cols,
        )
        for row in self.rows:
            table.add_row(**{col: row.get(col) for col in cols})
        return table

    def to_json(self, path: str) -> None:
        """Versioned JSON export (schema header + rows)."""
        from .. import io

        io.dump_json(self._export_payload(), path)

    def to_csv(self, path: str) -> None:
        """CSV export; first row is a ``# schema`` comment header."""
        from .. import io

        io.dump_csv(self.columns, self.rows, path,
                    schema_header=self._schema_header())

    def to_parquet(self, path: str) -> None:
        """Parquet export; raises RuntimeError when pyarrow is absent."""
        from .. import io

        io.dump_parquet(self.columns, self.rows, path,
                        metadata=self._schema_header())

    def _schema_header(self) -> "dict[str, str]":
        return {"study": self.study,
                "results_schema": str(self.schema_version)}

    def _export_payload(self) -> "dict[str, Any]":
        return {
            "study": self.study,
            "results_schema": self.schema_version,
            "columns": list(self.columns),
            "meta": dict(self.meta),
            "rows": [dict(row) for row in self.rows],
        }
