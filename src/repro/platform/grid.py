"""Declarative study grids with an async, resumable run pipeline.

A :class:`StudyGrid` names a cell runner (as an importable
``"module:function"`` path so cells pickle cheaply to worker
processes), a base config, and an ordered mapping of axes; the cross
product of the axes is the cell list, enumerated in axis order so cell
index — and therefore row order — is a pure function of the spec.

:meth:`StudyGrid.run_async` is the pipeline: probe the store for every
cell, fan the misses out over a :class:`ProcessPoolExecutor` through
the event loop, stream a :class:`~repro.platform.progress.ProgressEvent`
per completion (in completion order, for liveness), then merge payloads
into a :class:`~repro.platform.results.Results` strictly in cell order
(for determinism).  Cell runners are pure functions of their config —
all randomness forked from ``(seed, stream name, index)`` — so any
worker count, and any cached/computed split, yields bit-identical rows.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from .pool import effective_workers
from .progress import ProgressEvent
from .results import RESULTS_SCHEMA_VERSION, Results
from .store import STORE_SCHEMA_VERSION, ResultStore, content_key, normalize

__all__ = ["GridCell", "StudyGrid", "run_grid"]


@dataclass(frozen=True)
class GridCell:
    """One point of the cross product: coordinates, resolved config,
    and the content key its result is stored under."""

    index: int
    coords: "tuple[tuple[str, Any], ...]"
    config: "dict[str, Any]"
    key: str


def _resolve_runner(path: str) -> Callable[[dict[str, Any]], Any]:
    """``"pkg.module:function"`` → the function object."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"runner must be 'module:function', got {path!r}")
    runner = getattr(import_module(module_name), attr)
    if not callable(runner):
        raise TypeError(f"runner {path!r} is not callable")
    return runner


def _run_cell(runner_path: str, config: "dict[str, Any]") -> Any:
    """Execute one cell in a worker process (module-level: picklable)."""
    return _resolve_runner(runner_path)(config)


@dataclass
class StudyGrid:
    """A declarative grid spec: study name, runner path, axes, base.

    ``axes`` maps axis name → candidate values; insertion order defines
    the enumeration order (last axis varies fastest).  ``base`` holds
    parameters common to every cell.  Axis values shadow base keys of
    the same name in the resolved cell config.  ``schema_version`` is
    the *study's* own version stamp — bump it when the cell runner's
    output layout changes, and every old cached cell silently misses.
    """

    study: str
    runner: str
    axes: "Mapping[str, Sequence[Any]]"
    base: "dict[str, Any]" = field(default_factory=dict)
    schema_version: int = 1
    #: Export column order; defaults to axis names + sorted payload keys.
    columns: "tuple[str, ...]" = ()

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def cells(self) -> "Iterator[GridCell]":
        names = list(self.axes)
        values = [list(self.axes[name]) for name in names]
        for index, combo in enumerate(itertools.product(*values)):
            coords = tuple(zip(names, combo))
            config = dict(self.base)
            config.update(coords)
            yield GridCell(index=index, coords=coords, config=config,
                           key=self.cell_key(config))

    def cell_key(self, config: "Mapping[str, Any]") -> str:
        """The content address of one resolved cell config.

        Includes the runner path and both schema versions: a changed
        runner, store layout, or payload layout must never serve stale
        records, while a grown axis (new values appended) leaves every
        existing cell's key — and cache entry — untouched.
        """
        return content_key({
            "study": self.study,
            "runner": self.runner,
            "store_schema": STORE_SCHEMA_VERSION,
            "schema": self.schema_version,
            "config": dict(config),
        })

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    # ------------------------------------------------------------------
    # Run pipeline
    # ------------------------------------------------------------------

    def run(self, *, workers: "Optional[int]" = 1,
            store: "Optional[ResultStore]" = None,
            resume: bool = True,
            progress: "Optional[Callable[[ProgressEvent], None]]" = None,
            ) -> Results:
        """Synchronous wrapper around :meth:`run_async`."""
        return asyncio.run(self.run_async(
            workers=workers, store=store, resume=resume,
            progress=progress))

    async def run_async(self, *, workers: "Optional[int]" = 1,
                        store: "Optional[ResultStore]" = None,
                        resume: bool = True,
                        progress: "Optional[Callable[[ProgressEvent], None]]"
                        = None) -> Results:
        """Run the grid: serve cached cells, compute the rest, merge.

        With ``resume`` and a store, each cell is first probed by key;
        verified records are served without recomputation (corrupt ones
        read as misses and are recomputed — the store counts them).
        Pending cells run inline when the effective worker count is 1,
        otherwise on a process pool driven through the event loop so
        progress streams as cells finish.  The final merge is by cell
        index, so results are identical for any concurrency.
        """
        cells = list(self.cells())
        started = time.monotonic()
        payloads: "dict[int, Any]" = {}
        cached = corrupt = computed = 0
        done = 0

        def emit(cell: GridCell) -> None:
            if progress is None:
                return
            elapsed = time.monotonic() - started
            eta: "Optional[float]" = None
            if computed:
                pending = len(cells) - done
                eta = (elapsed / computed) * pending
            progress(ProgressEvent(
                study=self.study, done=done, total=len(cells),
                computed=computed, cached=cached, corrupt=corrupt,
                elapsed_seconds=elapsed, eta_seconds=eta,
                coords=cell.coords))

        pending: "list[GridCell]" = []
        if store is not None and resume:
            for cell in cells:
                existed = store.path_for(cell.key).exists()
                body = store.get(cell.key)
                if body is None:
                    if existed:
                        corrupt += 1
                    pending.append(cell)
                    continue
                payloads[cell.index] = body
                cached += 1
                done += 1
                emit(cell)
        else:
            pending = cells

        def record(cell: GridCell, payload: Any) -> None:
            nonlocal computed, done
            payload = normalize(payload)
            payloads[cell.index] = payload
            computed += 1
            done += 1
            if store is not None:
                store.put(cell.key, payload, study=self.study,
                          coords=cell.coords)
            emit(cell)

        count = effective_workers(workers, len(pending))
        if pending and count <= 1:
            runner = _resolve_runner(self.runner)
            for cell in pending:
                record(cell, runner(cell.config))
                await asyncio.sleep(0)
        elif pending:
            loop = asyncio.get_running_loop()
            with ProcessPoolExecutor(max_workers=count) as executor:
                async def compute(cell: GridCell) -> "tuple[GridCell, Any]":
                    payload = await loop.run_in_executor(
                        executor, _run_cell, self.runner, cell.config)
                    return cell, payload

                tasks = [compute(cell) for cell in pending]
                for finished in asyncio.as_completed(tasks):
                    cell, payload = await finished
                    record(cell, payload)

        rows = self._merge(cells, payloads)
        columns = self.columns or self._infer_columns(rows)
        return Results(
            study=self.study,
            columns=columns,
            rows=rows,
            meta={
                "total": len(cells),
                "computed": computed,
                "cached": cached,
                "corrupt": corrupt,
                "grid_schema": self.schema_version,
                "elapsed_seconds": time.monotonic() - started,
            },
        )

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def _merge(self, cells: "Sequence[GridCell]",
               payloads: "Mapping[int, Any]") -> "list[dict[str, Any]]":
        """Rows in cell order: coordinates first, then payload fields.

        Coordinates pass through the same JSON normalization as
        payloads so a row never mixes a tuple coordinate (cold run)
        with a list one (warm run).
        """
        rows: "list[dict[str, Any]]" = []
        for cell in cells:
            row: "dict[str, Any]" = {
                axis: normalize(value) for axis, value in cell.coords}
            payload = payloads[cell.index]
            if isinstance(payload, Mapping):
                for key, value in payload.items():
                    row[key] = value
            else:
                row["value"] = payload
            rows.append(row)
        return rows

    def _infer_columns(self,
                       rows: "Sequence[Mapping[str, Any]]",
                       ) -> "tuple[str, ...]":
        names = list(self.axes)
        seen = set(names)
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        return tuple(names)


def run_grid(grid: StudyGrid, **kwargs: Any) -> Results:
    """Convenience: ``grid.run(**kwargs)`` for functional call sites."""
    return grid.run(**kwargs)
