"""Process fan-out with a deterministic in-order merge.

This is the one place the experiments layer constructs a
:class:`~concurrent.futures.ProcessPoolExecutor` (the REP013 lint rule
keeps ad-hoc pools out of ``repro/experiments/``).  The contract is the
one the PR-2 study runner established: tasks are pure functions of
their item (all randomness forked from ``(seed, name, index)``), so
results can be yielded in submission order and any worker count is
bit-identical to the sequential path.

The long-lived sharded engine (``repro.flow.sharded``) keeps its own
executor: it needs per-process initializers and shared-memory calendar
exports, a different seam from the fire-and-merge fan-out here.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, Optional, TypeVar

__all__ = ["effective_workers", "fanout_map"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def effective_workers(workers: Optional[int], task_count: int) -> int:
    """Clamp a worker request to something sensible for ``task_count``.

    ``None`` means one worker per CPU; requests above the task count
    are clamped (a pool larger than the work is pure overhead), and
    non-positive requests are rejected.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return min(workers, max(1, task_count))


def fanout_map(fn: Callable[[_ItemT], _ResultT],
               items: Iterable[_ItemT],
               *,
               workers: Optional[int] = 1,
               chunksize: Optional[int] = None) -> Iterator[_ResultT]:
    """Yield ``fn(item)`` for every item, in submission order.

    ``workers <= 1`` runs inline (no pool, no pickling); anything
    larger fans out over a :class:`ProcessPoolExecutor` and merges via
    ``executor.map`` — which yields in submission order, so folding the
    results reproduces the sequential fold sample for sample.  ``fn``
    must be a picklable module-level callable and self-contained (no
    reliance on parent-process globals).
    """
    materialized = list(items)
    count = effective_workers(workers, len(materialized))
    if count <= 1 or len(materialized) <= 1:
        for item in materialized:
            yield fn(item)
        return
    if chunksize is None:
        chunksize = max(1, len(materialized) // (count * 4))
    with ProcessPoolExecutor(max_workers=count) as executor:
        yield from executor.map(fn, materialized, chunksize=chunksize)
