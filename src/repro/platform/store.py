"""Content-addressed result store: resumable, corruption-detecting.

Every grid cell persists as one JSON record keyed by a stable SHA-256
hash of its *resolved* configuration (base parameters + axis
coordinates) together with the study's schema version — see
:func:`content_key`.  Two consequences the platform's resumability
rests on:

* re-running an identical grid finds every key and recomputes nothing;
* changing one parameter changes exactly the keys of the cells whose
  resolved config contains it — the affected slice — and no others.

Records embed a digest of their own body; :meth:`ResultStore.get`
recomputes it on every read, so a truncated or bit-flipped cell file is
*detected* and treated as a miss (recomputed), never trusted.  All
writes are atomic (temp file + ``os.replace``) so a crashed run leaves
either the old record or the new one, not a torn file.

Counters (when :data:`~repro.perf.registry.PERF` collects):
``platform.store_served`` (valid records returned),
``platform.store_absent`` (keys not present), and
``platform.store_corrupt`` (records present but failing verification).
Deliberately not a ``*_hits``/``*_misses`` pair — that suffix is
reserved for :class:`~repro.core.context.SchedulingContext` caches.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional

from ..perf import PERF

__all__ = ["STORE_SCHEMA_VERSION", "canonical_json", "content_key",
           "ResultStore"]

#: Bump when the on-disk record layout changes incompatibly; part of
#: every cell key, so old-layout records are simply never matched.
STORE_SCHEMA_VERSION = 1


def _canonical_default(value: Any) -> Any:
    """JSON fallback for the value kinds grid configs legitimately hold."""
    # Enums serialize by value, numpy scalars by their Python builtin.
    if hasattr(value, "value") and type(type(value)).__name__ == "EnumType":
        return value.value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"not canonically serializable: {type(value).__name__!r}")


def canonical_json(payload: Any) -> str:
    """A byte-stable JSON rendering: sorted keys, minimal separators.

    The store's single source of truth for both keys and digests —
    tuples collapse to arrays, enums to values, numpy scalars to
    builtins, so logically equal configs always hash equally.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_canonical_default)


def normalize(payload: Any) -> Any:
    """The payload as it would read back from the store (JSON round
    trip).  Merging *normalized* payloads keeps cold runs bit-identical
    to warm ones: tuples are lists and numpy scalars are builtins on
    both paths."""
    return json.loads(canonical_json(payload))


def content_key(payload: Any) -> str:
    """Stable SHA-256 hex key of a resolved cell description."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class ResultStore:
    """On-disk content-addressed store of grid-cell payloads.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level fanout keeps
    directories small at 10^5+ cells.  Records carry the study name and
    cell coordinates for ``repro study ls`` but neither participates in
    the key (the key is the resolved config's hash).
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The stored body for ``key``, or None (absent *or* corrupt).

        A record is served only when it parses, names this key, and its
        body re-hashes to the recorded digest; anything else counts as
        corruption and reads as a miss so the runner recomputes the
        cell instead of trusting damaged bytes.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            if PERF.enabled:
                PERF.incr("platform.store_absent")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            if PERF.enabled:
                PERF.incr("platform.store_corrupt")
            return None
        if not self._verify(key, record):
            if PERF.enabled:
                PERF.incr("platform.store_corrupt")
            return None
        if PERF.enabled:
            PERF.incr("platform.store_served")
        body: dict[str, Any] = record["body"]
        return body

    @staticmethod
    def _verify(key: str, record: Any) -> bool:
        if not isinstance(record, dict):
            return False
        if record.get("key") != key:
            return False
        if record.get("store_schema") != STORE_SCHEMA_VERSION:
            return False
        body = record.get("body")
        digest = hashlib.sha256(canonical_json(body).encode()).hexdigest()
        return digest == record.get("digest")

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, key: str, body: Any, *, study: str = "",
            coords: Any = None) -> None:
        """Persist ``body`` under ``key`` (atomic replace)."""
        body = normalize(body)
        record = {
            "store_schema": STORE_SCHEMA_VERSION,
            "key": key,
            "study": study,
            "coords": normalize(coords) if coords is not None else None,
            "digest": hashlib.sha256(
                canonical_json(body).encode()).hexdigest(),
            "body": body,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Every parseable record in the store (corrupt files skipped)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            try:
                with open(path, encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(record, dict):
                yield record

    def inventory(self) -> dict[str, dict[str, Any]]:
        """Per-study cell counts and byte sizes (``repro study ls``)."""
        studies: dict[str, dict[str, Any]] = {}
        for record in self.records():
            study = str(record.get("study") or "<unknown>")
            bucket = studies.setdefault(study, {"cells": 0, "bytes": 0})
            bucket["cells"] += 1
            try:
                bucket["bytes"] += self.path_for(
                    str(record.get("key", ""))).stat().st_size
            except OSError:
                pass
        return studies

    def clean(self, study: Optional[str] = None) -> int:
        """Delete records (all, or one study's); returns the count.

        Unparseable files are deleted too when cleaning everything —
        they can never be served, only recounted as corruption.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.glob("*/*.json")):
            keep = False
            if study is not None:
                try:
                    with open(path, encoding="utf-8") as handle:
                        record = json.load(handle)
                    keep = (isinstance(record, dict)
                            and record.get("study") != study)
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    keep = False
            if not keep:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
