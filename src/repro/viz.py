"""Plain-text rendering of schedules and calendars.

Terminal-friendly Gantt charts in the spirit of the paper's Fig. 2b —
one row per node, task ids drawn across their wall-time reservations —
used by examples and handy when debugging strategies.

>>> from repro.core import Distribution, Placement
>>> from repro.workload import fig2_pool
>>> dist = Distribution("demo", [Placement("P1", 1, 0, 2),
...                              Placement("P2", 2, 3, 9)])
>>> print(render_distribution(dist, fig2_pool()))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .core.calendar import ReservationCalendar
from .core.resources import ResourcePool
from .core.schedule import Distribution

__all__ = ["render_distribution", "render_calendars", "render_timeline"]

#: Character drawn for slots inside a labelled block past the label.
_FILL = "="
#: Character drawn for idle slots.
_IDLE = "."


def _draw_blocks(width: int,
                 blocks: Iterable[tuple[int, int, str]]) -> str:
    """One Gantt row: ``blocks`` are (start, end, label) triples."""
    row = [_IDLE] * width
    for start, end, label in sorted(blocks):
        span = max(0, min(end, width) - start)
        if span <= 0 or start >= width:
            continue
        text = label[:span].ljust(span, _FILL)
        row[start:start + span] = list(text)
    return "".join(row)


def _axis(width: int, step: int = 10) -> str:
    """A time axis with tick labels every ``step`` slots."""
    marks = [" "] * width
    for tick in range(0, width, step):
        label = str(tick)
        for offset, char in enumerate(label):
            if tick + offset < width:
                marks[tick + offset] = char
    return "".join(marks)


def render_distribution(distribution: Distribution,
                        pool: Optional[ResourcePool] = None,
                        width: Optional[int] = None) -> str:
    """Render a distribution as a node-per-row Gantt chart."""
    horizon = width or max(distribution.makespan, 1)
    lines = [f"Distribution {distribution.job_id!r}"
             + (f" ({distribution.scenario})" if distribution.scenario
                else "")]
    node_ids = sorted(distribution.node_ids())
    if pool is not None:
        node_ids = [node.node_id for node in pool
                    if node.node_id in set(node_ids)] or node_ids
    label_width = max((len(_node_label(node_id, pool))
                       for node_id in node_ids), default=6)
    for node_id in node_ids:
        blocks = [(p.start, p.end, p.task_id)
                  for p in distribution if p.node_id == node_id]
        lines.append(f"{_node_label(node_id, pool):<{label_width}} |"
                     f"{_draw_blocks(horizon, blocks)}|")
    lines.append(f"{'':<{label_width}}  {_axis(horizon)}")
    return "\n".join(lines)


def _node_label(node_id: int, pool: Optional[ResourcePool]) -> str:
    if pool is not None and node_id in pool:
        node = pool.node(node_id)
        return f"n{node_id}({node.performance:.2f})"
    return f"n{node_id}"


def render_calendars(calendars: Mapping[int, ReservationCalendar],
                     horizon: int,
                     pool: Optional[ResourcePool] = None,
                     label: str = "Calendars") -> str:
    """Render node calendars (background + committed jobs) over time."""
    if horizon < 1:
        raise ValueError(f"horizon must be positive, got {horizon}")
    lines = [f"{label} [0, {horizon})"]
    node_ids = sorted(calendars)
    label_width = max((len(_node_label(node_id, pool))
                       for node_id in node_ids), default=6)
    for node_id in node_ids:
        blocks = [
            (reservation.start, reservation.end,
             reservation.tag or "busy")
            for reservation in calendars[node_id].conflicts(0, horizon)
        ]
        lines.append(f"{_node_label(node_id, pool):<{label_width}} |"
                     f"{_draw_blocks(horizon, blocks)}|")
    lines.append(f"{'':<{label_width}}  {_axis(horizon)}")
    return "\n".join(lines)


def render_timeline(events: Iterable[tuple[int, str]],
                    label: str = "Timeline") -> str:
    """Render (time, description) events as an ordered list."""
    lines = [label]
    for time, description in sorted(events):
        lines.append(f"  t={time:>5}  {description}")
    return "\n".join(lines)
