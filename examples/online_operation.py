"""Online operation: the framework running live on the simulation clock.

Jobs arrive as a Poisson stream; each is planned and committed by the
metascheduler on arrival and then *executed* on per-node agents with
actual (randomized) task durations — producers that run long really do
delay their consumers.  Two passes compare the punctual regime (actual
durations within the activated schedule's estimates) against an
overrun regime (estimates sometimes wrong), showing how QoS erodes.

Run with::

    python examples/online_operation.py
"""

from repro.flow import OnlineConfig, OnlineSimulation
from repro.sim import RandomStreams
from repro.workload import generate_pool


def describe(title: str, simulation: OnlineSimulation) -> None:
    outcomes = simulation.run()
    executed = [o for o in outcomes if o.slack is not None]
    late = [o for o in executed if o.slack < 0]
    print(f"{title}")
    print(f"  arrivals: {len(outcomes)}, "
          f"admitted: {simulation.admission_rate():.0%}, "
          f"deadline hit rate: {simulation.deadline_hit_rate():.0%}")
    if executed:
        mean_slack = sum(o.slack for o in executed) / len(executed)
        print(f"  executed jobs: {len(executed)}, late: {len(late)}, "
              f"mean slack (planned - actual finish): {mean_slack:+.1f}")
    utilization = simulation.node_utilization()
    print(f"  mean node utilization: "
          f"{sum(utilization.values()) / len(utilization):.1%}\n")


def main(seed: int = 9) -> None:
    def fresh_pool():
        return generate_pool(RandomStreams(seed).stream("pool"))

    describe(
        "Punctual regime (actual durations within the activated level):",
        OnlineSimulation(fresh_pool(), seed=seed, config=OnlineConfig(
            horizon=300, mean_interarrival=10.0,
            actual_within_plan=True)))

    describe(
        "Overrun regime (estimates sometimes undershoot reality):",
        OnlineSimulation(fresh_pool(), seed=seed, config=OnlineConfig(
            horizon=300, mean_interarrival=10.0,
            actual_within_plan=False)))

    print("The wall-time reservations keep the punctual regime at a "
          "100% hit rate;\nunder overruns, lateness cascades through "
          "precedence and node contention —\nthe erosion the paper's "
          "supporting-schedule switching is designed to absorb.")


if __name__ == "__main__":
    main()
