"""Quickstart: schedule the paper's Fig. 2 compound job.

Builds the six-task information graph with its estimate table, runs the
critical works method against an empty four-type node pool, and prints
the resulting distribution, its CF cost, and the collision that had to
be resolved (P4 vs P5 — the same one the paper discusses).

Run with::

    python examples/quickstart.py
"""

from repro.core import CriticalWorksScheduler, ReservationCalendar
from repro.viz import render_distribution
from repro.workload import fig2_estimate_table, fig2_job, fig2_pool


def main() -> None:
    job = fig2_job()
    pool = fig2_pool()

    print(f"Job {job.job_id!r}: {len(job)} tasks, "
          f"{len(job.transfers)} transfers, deadline {job.deadline}")
    print("\nEstimate table (execution slots on node types 1..4):")
    for task_id, row in fig2_estimate_table().items():
        print(f"  {task_id}: {row}  volume={job.task(task_id).volume:g}")

    scheduler = CriticalWorksScheduler(pool)
    print("\nCritical works (longest chains first):")
    for length, chain in scheduler.critical_works(job):
        print(f"  {length:>3} slots: {' -> '.join(chain)}")

    calendars = {node.node_id: ReservationCalendar() for node in pool}
    outcome = scheduler.build_schedule(job, calendars)

    print(f"\nSchedule (CF = {outcome.cost:g}, "
          f"makespan = {outcome.makespan}, "
          f"admissible = {outcome.admissible}):")
    for placement in sorted(outcome.distribution,
                            key=lambda p: (p.start, p.task_id)):
        node = pool.node(placement.node_id)
        print(f"  {placement.task_id} on node {placement.node_id} "
              f"(perf {node.performance:.2f}) "
              f"[{placement.start}, {placement.end})")

    for collision in outcome.collisions:
        print(f"\nResolved {collision}")

    print()
    print(render_distribution(outcome.distribution, pool,
                              width=job.deadline))


if __name__ == "__main__":
    main()
