"""Local batch-queue policies on one synthetic trace (Section 5).

Runs the same arrival trace through FCFS, LWF, EASY backfilling, and
conservative backfilling; then shows how sprinkling advance
reservations over the trace stretches everyone else's queue waits.

Run with::

    python examples/local_queue_policies.py
"""

from repro.local import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    LocalBatchSystem,
    LWFPolicy,
)
from repro.workload import BatchTraceConfig, generate_batch_trace


def main(n_jobs: int = 300, capacity: int = 8, seed: int = 3) -> None:
    config = BatchTraceConfig()
    policies = [FCFSPolicy(), LWFPolicy(), EasyBackfillPolicy(),
                ConservativeBackfillPolicy()]

    print(f"{'policy':<8}{'mean wait':<12}{'max wait':<10}"
          f"{'forecast err':<14}{'makespan':<9}")
    for policy in policies:
        system = LocalBatchSystem(capacity, policy)
        system.submit_many(generate_batch_trace(seed, n_jobs, config))
        records = system.run()
        print(f"{policy.name:<8}"
              f"{LocalBatchSystem.mean_wait(records):<12.2f}"
              f"{max(r.wait for r in records):<10}"
              f"{LocalBatchSystem.mean_forecast_error(records):<14.2f}"
              f"{max(r.end for r in records):<9}")

    print("\nAdvance reservations (every 5th job reserved 10 slots "
          "after arrival, FCFS):")
    trace = list(generate_batch_trace(seed, n_jobs, config))
    system = LocalBatchSystem(capacity, FCFSPolicy())
    system.submit_many(trace)
    for index, job in enumerate(trace):
        if index % 5 == 0:
            system.reserve(job, start=job.arrival + 10)
    records = system.run()
    unreserved_wait = LocalBatchSystem.mean_wait(records)

    plain = LocalBatchSystem(capacity, FCFSPolicy())
    plain.submit_many(trace)
    baseline_wait = LocalBatchSystem.mean_wait(plain.run())

    print(f"  mean unreserved wait with reservations: "
          f"{unreserved_wait:.2f}")
    print(f"  mean wait without reservations:         "
          f"{baseline_wait:.2f}")
    print("  -> preliminary reservation increases queue waiting time, "
          "as the paper's Section 5 reports")


if __name__ == "__main__":
    main()
