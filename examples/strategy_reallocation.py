"""Dynamic reallocation: watching a strategy survive environment drift.

Generates one job's S1 strategy (four supporting schedules, one per
estimation level), then replays a stream of background reservation
events against it.  Each time the active supporting schedule is
invalidated, the metascheduler switches to another surviving variant —
until none remains (the strategy's time-to-live).

Run with::

    python examples/strategy_reallocation.py
"""

from repro.core import StrategyGenerator, StrategyType
from repro.flow import invalidates, strategy_time_to_live
from repro.grid import GridEnvironment
from repro.sim import RandomStreams
from repro.workload import generate_job, generate_pool


def main(seed: int = 21) -> None:
    streams = RandomStreams(seed)
    pool = generate_pool(streams.stream("pool"))
    environment = GridEnvironment(pool)
    environment.apply_background_load(streams.stream("background"),
                                      busy_fraction=0.3, horizon=200,
                                      max_burst=20)

    job = generate_job(streams.fork("jobs", 0), 0)
    generator = StrategyGenerator(pool)
    events = environment.sample_background_events(
        streams.stream("drift"), rate=3.0, horizon=200)
    print(f"Job {job.job_id!r} (deadline {job.deadline}); replaying "
          f"{len(events)} drift events against each strategy family\n")

    for stype in (StrategyType.S1, StrategyType.S2, StrategyType.S3,
                  StrategyType.MS1):
        strategy = generator.generate(job, environment.snapshot(), stype)
        print(f"{stype.value}: {len(strategy.schedules)} supporting "
              f"schedules")
        for schedule in strategy.schedules:
            status = ("cost %.0f, makespan %d, nodes %s"
                      % (schedule.outcome.cost, schedule.outcome.makespan,
                         sorted(schedule.distribution.node_ids()))
                      if schedule.admissible else "inadmissible")
            print(f"  level {schedule.level:.2f}: {status}")

        active = strategy.best_schedule()
        for event in events:
            if (active is not None
                    and invalidates(event, active.distribution)):
                print(f"  t={event.arrival}: node {event.node_id} slot "
                      f"[{event.start},{event.end}) steals from the "
                      f"active level-{active.level:.2f} schedule")
                break
        result = strategy_time_to_live(strategy, events, horizon=200)
        print(f"  time-to-live: {result.ttl} slots "
              f"({'survived' if result.survived else 'exhausted'}), "
              f"{result.switches} reallocation(s)\n")


if __name__ == "__main__":
    main()
