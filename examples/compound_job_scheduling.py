"""Strategies on random compound jobs.

Generates a random workload per the paper's Section 4 parameters,
builds all four strategy families (S1, S2, S3, MS1) for each job under
background load, and compares admissibility, cost, makespan, and
generation expense — a miniature of the Fig. 3 study you can read end
to end.

Run with::

    python examples/compound_job_scheduling.py [n_jobs] [seed]
"""

import sys

from repro.core import StrategyGenerator, StrategyType
from repro.grid import GridEnvironment
from repro.sim import RandomStreams
from repro.workload import generate_job, generate_pool


def main(n_jobs: int = 8, seed: int = 7) -> None:
    streams = RandomStreams(seed)
    pool = generate_pool(streams.stream("pool"))
    print(f"VO pool: {len(pool)} nodes "
          f"({', '.join(f'{n.performance:.2f}' for n in pool)})\n")

    environment = GridEnvironment(pool)
    environment.apply_background_load(streams.stream("background"),
                                      busy_fraction=0.5, horizon=400,
                                      max_burst=20)
    generator = StrategyGenerator(pool)

    header = (f"{'job':<7}{'type':<6}{'admissible':<12}{'coverage':<10}"
              f"{'best CF':<9}{'makespan':<10}{'expense':<8}")
    print(header)
    print("-" * len(header))
    for index in range(n_jobs):
        job = generate_job(streams.fork("jobs", index), index)
        calendars = environment.snapshot()
        for stype in StrategyType:
            strategy = generator.generate(job, calendars, stype)
            best = strategy.best_schedule()
            print(f"{job.job_id:<7}{stype.value:<6}"
                  f"{str(strategy.admissible):<12}"
                  f"{strategy.coverage:<10.2f}"
                  f"{(best.outcome.cost if best else float('nan')):<9.0f}"
                  f"{(best.outcome.makespan if best else 0):<10}"
                  f"{strategy.generation_expense:<8}")
        print()


if __name__ == "__main__":
    arguments = [int(a) for a in sys.argv[1:3]]
    main(*arguments)
