"""Full hierarchical job-flow simulation (the Fig. 1 architecture).

Builds a virtual organization with three administrative domains, quota
accounts for two users, and background load from independent flows.
Jobs are submitted onto flows by strategy type; the metascheduler plans
each job on every domain's job manager, commits the winning supporting
schedule, falls back to alternatives when the environment drifted
(reallocation), and charges the owner's quota.

Run with::

    python examples/jobflow_simulation.py
"""

from repro.core import StrategyType
from repro.flow import VirtualOrganization
from repro.sim import RandomStreams
from repro.workload import generate_job, generate_pool


def main(n_jobs: int = 12, seed: int = 11) -> None:
    streams = RandomStreams(seed)
    pool = generate_pool(streams.stream("pool"), domains=3)
    vo = VirtualOrganization(pool, full_hierarchy=True)
    vo.register_user("alice", budget=4000)
    vo.register_user("bob", budget=4000)
    vo.economics.set_surge("bob", 2.0)  # bob pays double for priority

    print("Domains and their nodes:")
    for domain in pool.domains():
        nodes = pool.by_domain(domain)
        print(f"  {domain}: {len(nodes)} nodes, "
              f"perf {min(n.performance for n in nodes):.2f}"
              f"–{max(n.performance for n in nodes):.2f}")

    vo.preload_background(streams.stream("background"),
                          busy_fraction=0.3, horizon=300)

    stypes = [StrategyType.S1, StrategyType.S2, StrategyType.S3]
    for index in range(n_jobs):
        owner = "alice" if index % 2 == 0 else "bob"
        job = generate_job(streams.fork("jobs", index), index, owner=owner)
        vo.submit(job, stypes[index % len(stypes)])

    records = vo.dispatch()

    print(f"\n{'job':<7}{'owner':<7}{'flow':<6}{'domain':<10}"
          f"{'committed':<11}{'realloc':<9}{'charge':<8}{'reason':<12}")
    for record in records:
        strategy = record.strategy
        owner = strategy.job.owner if strategy else "?"
        print(f"{record.job_id:<7}{owner:<7}{record.stype.value:<6}"
              f"{(record.domain or '-'):<10}{str(record.committed):<11}"
              f"{record.reallocations:<9}"
              f"{(f'{record.charge:.0f}' if record.charge else '-'):<8}"
              f"{record.reason:<12}")

    summary = vo.summarize(records)
    print(f"\nAdmission rate: {summary.admission_rate:.0%} "
          f"({summary.committed}/{summary.total}); "
          f"reallocations: {summary.reallocations}; "
          f"budget rejections: {summary.budget_rejections}")

    print("\nJob load level per node group over [0, 300):")
    for group, level in vo.load_by_group(0, 300).items():
        print(f"  {group.value:<7}{level:.1%}")

    for user in ("alice", "bob"):
        account = vo.economics.account(user)
        print(f"{user}: spent {account.spent:.0f} of "
              f"{account.budget:.0f} quota units "
              f"(surge ×{account.surge:g})")


if __name__ == "__main__":
    main()
